"""Tests for the observability subsystem (repro.obs)."""

import json

import pytest

from repro.machine import Machine, MachineConfig
from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    collect_machine,
)
from repro.obs.profiler import BUCKETS, CycleProfiler, merge_attribution
from repro.obs.sampler import TimeSampler
from repro.proc import Compute, Load, Send, Store


def machine(n=4):
    return Machine(MachineConfig(n_nodes=n))


def _compute_gen(cycles):
    yield Compute(cycles)


def run_mixed_workload(m):
    """Compute + local/remote memory traffic + a message handler."""
    local = m.alloc(0, 8)
    remote = m.alloc(1, 8)

    def handler(msg):
        yield Compute(5)

    m.processor(1).register_handler("ping", handler)

    def worker():
        yield Compute(50)
        yield Store(local, 1)
        yield Load(local)
        yield Store(remote, 2)
        yield Load(remote)
        yield Send(1, "ping", operands=(1,))
        yield Compute(10)

    m.processor(0).run_thread(worker(), label="worker")
    m.run()


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_lazy_counter_reads_current_value(self):
        reg = MetricsRegistry()
        state = {"v": 1}
        reg.counter("x", lambda: state["v"], node=0)
        state["v"] = 42
        assert reg.collect().value("x") == 42

    def test_duplicate_instrument_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x", lambda: 0, node=0)
        reg.counter("x", lambda: 0, node=1)  # different labels: fine
        with pytest.raises(ValueError):
            reg.counter("x", lambda: 0, node=0)

    def test_histogram_buckets_and_bounds(self):
        h = Histogram("h", (10, 20), {})
        for v in (5, 10, 11, 25):
            h.observe(v)
        assert h.counts == [2, 1, 1]  # <=10, <=20, +inf
        assert h.count == 4 and h.total == 51
        with pytest.raises(ValueError):
            Histogram("bad", (10, 10), {})

    def test_value_missing_and_ambiguous(self):
        reg = MetricsRegistry()
        reg.counter("x", lambda: 1, node=0)
        reg.counter("x", lambda: 2, node=1)
        snap = reg.collect()
        assert snap.value("x", node=1) == 2
        assert snap.total("x") == 3
        with pytest.raises(KeyError):
            snap.value("x")  # ambiguous
        with pytest.raises(KeyError):
            snap.value("nope")


class TestSnapshotMerge:
    def snap(self, counter, gauge):
        reg = MetricsRegistry()
        reg.counter("c", lambda: counter)
        reg.gauge("g", lambda: gauge)
        h = reg.histogram("h", (10,))
        h.observe(counter)
        return reg.collect()

    def test_counters_sum_gauges_average_histograms_sum(self):
        a, b = self.snap(4, 1.0), self.snap(8, 3.0)
        a.merge(b)
        assert a.merged_from == 2
        assert a.value("c") == 12
        assert a.value("g") == 2.0  # equal-weight mean
        assert a.value("h")["count"] == 2

    def test_weighted_gauge_mean_over_three(self):
        a, b, c = self.snap(0, 1.0), self.snap(0, 2.0), self.snap(0, 6.0)
        a.merge(b)
        a.merge(c)  # (1+2)/2 merged with 6 at weights 2:1
        assert a.value("g") == pytest.approx(3.0)

    def test_dict_round_trip(self):
        a = self.snap(4, 1.0)
        b = MetricsSnapshot.from_dict(json.loads(json.dumps(a.as_dict())))
        assert b.value("c") == 4 and b.merged_from == 1

    def test_disjoint_rows_union(self):
        reg1, reg2 = MetricsRegistry(), MetricsRegistry()
        reg1.counter("only_a", lambda: 1)
        reg2.counter("only_b", lambda: 2)
        a, b = reg1.collect(), reg2.collect()
        a.merge(b)
        assert a.value("only_a") == 1 and a.value("only_b") == 2


class TestCollectMachine:
    def test_every_component_contributes(self):
        m = machine()
        run_mixed_workload(m)
        snap = collect_machine(m)
        names = snap.names()
        for prefix in ("net.", "coh.", "cache.", "dir.", "cmmu.", "proc.", "sim."):
            assert any(n.startswith(prefix) for n in names), prefix
        assert snap.value("sim.cycles") == m.sim.now
        assert snap.total("cache.hits") > 0
        assert snap.value("net.packets") > 0

    def test_scheduler_metrics_via_runtime(self):
        from repro.runtime import Runtime

        m = machine()
        rt = Runtime(m, scheduler="hybrid")
        rt.run_to_completion(0, lambda rt, nd: _compute_gen(10))
        snap = collect_machine(m)
        assert snap.total("sched.tasks_run") >= 0
        assert any(
            r["labels"].get("kind") == "hybrid"
            for r in snap.rows
            if r["name"].startswith("sched.")
        )


# ----------------------------------------------------------------------
# Cycle-attribution profiler
# ----------------------------------------------------------------------
class TestProfiler:
    def test_buckets_sum_to_sim_now_per_node(self):
        m = machine()
        prof = CycleProfiler(m)
        run_mixed_workload(m)
        for node, rec in prof.per_node().items():
            assert sum(rec["buckets"].values()) == rec["total"] == m.sim.now, node

    def test_expected_buckets_nonzero(self):
        m = machine()
        prof = CycleProfiler(m)
        run_mixed_workload(m)
        totals = prof.totals()
        assert totals["compute"] > 0
        assert totals["cache_hit"] > 0
        assert totals["miss_stall"] > 0  # the remote load/store
        assert totals["handler"] > 0  # the ping handler
        assert totals["msg_send"] > 0
        assert totals["idle"] > 0  # nodes 2,3 did nothing

    def test_detach_restores_methods(self):
        m = machine()
        prof = CycleProfiler(m)
        prof.detach()
        for node in m.nodes:
            assert "_execute" not in node.processor.__dict__
            assert "_dispatch" not in node.processor.__dict__

    def test_profiler_does_not_change_cycles(self):
        def run(profiled):
            m = machine()
            prof = CycleProfiler(m) if profiled else None
            run_mixed_workload(m)
            return m.sim.now

        assert run(False) == run(True)

    def test_as_dict_and_merge(self):
        m = machine()
        prof = CycleProfiler(m)
        run_mixed_workload(m)
        a, b = prof.as_dict(), prof.as_dict()
        merged = merge_attribution(a, b)
        assert merged["machines"] == 2
        assert merged["total_cycles"] == 2 * b["total_cycles"]
        n0 = merged["per_node"]["0"]
        assert sum(n0["buckets"].values()) == n0["total"]

    def test_format_table_renders(self):
        m = machine()
        prof = CycleProfiler(m)
        run_mixed_workload(m)
        text = prof.format_table()
        assert "cycle attribution" in text
        for b in BUCKETS:
            assert b in text


# ----------------------------------------------------------------------
# Time-series sampler
# ----------------------------------------------------------------------
class TestSampler:
    def test_samples_on_interval_grid(self):
        m = machine()
        sampler = TimeSampler(m, interval=50)
        run_mixed_workload(m)
        assert sampler.samples
        assert [s["time"] for s in sampler.samples] == [
            50 * (i + 1) for i in range(len(sampler.samples))
        ]
        # never ticks past the end of model work
        assert sampler.samples[-1]["time"] <= m.sim.now

    def test_sample_fields_and_histograms(self):
        m = machine()
        sampler = TimeSampler(m, interval=50)
        run_mixed_workload(m)
        from repro.obs.sampler import SAMPLE_FIELDS

        for s in sampler.samples:
            assert set(s) == set(SAMPLE_FIELDS)
            assert 0.0 <= s["link_busy_frac"] <= 1.0
            assert 0.0 <= s["cache_hit_rate"] <= 1.0
        assert all(h.count == len(sampler.samples) for h in sampler.histograms)

    def test_sampler_does_not_change_cycles(self):
        def run(sampled):
            m = machine()
            if sampled:
                TimeSampler(m, interval=7)  # deliberately odd interval
            run_mixed_workload(m)
            return m.sim.now

        assert run(False) == run(True)

    def test_max_samples_cap(self):
        m = machine()
        sampler = TimeSampler(m, interval=10, max_samples=3)
        run_mixed_workload(m)
        assert len(sampler.samples) == 3
        assert sampler.dropped >= 1

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            TimeSampler(machine(), interval=0)

    def test_as_dict_and_table(self):
        m = machine()
        sampler = TimeSampler(m, interval=50)
        run_mixed_workload(m)
        d = sampler.as_dict()
        assert d["interval"] == 50 and len(d["samples"]) == len(sampler.samples)
        assert "time series" in sampler.format_table()
