"""Tests for trace export, the run.json manifest, and the session."""

import json

import pytest

from repro.obs.export import (
    RUN_MANIFEST_REQUIRED,
    events_to_chrome,
    export_perfetto,
    validate_run_manifest,
    write_run_manifest,
)
from repro.obs.session import ObsConfig, ObsSession, current, session
from repro.obs.validate import TRACE_EVENT_REQUIRED, main as validate_main


def ev(time, node, kind, what, detail=""):
    return (time, node, kind, what, detail)


def _compute_gen(cycles):
    from repro.proc import Compute

    yield Compute(cycles)


class TestChromeExport:
    def test_every_event_has_schema_keys(self):
        events = [
            ev(0, 0, "packet", "user_message", "->1 3w"),
            ev(5, 1, "handler", "ping", "from n0"),
            ev(9, 1, "handler", "ping", "return"),
            ev(2, 0, "context", "spawn", "7:worker"),
            ev(20, 0, "context", "finish", "7:worker"),
        ]
        out = events_to_chrome(events, pid=3, process_name="m0")
        assert out
        for e in out:
            assert set(TRACE_EVENT_REQUIRED) <= set(e), e
            assert e["pid"] == 3

    def test_handler_span_pairing(self):
        events = [
            ev(5, 1, "handler", "ping", "from n0"),
            ev(9, 1, "handler", "ping", "return"),
            ev(12, 1, "handler", "pong", "from n2"),
            ev(20, 1, "handler", "pong", "return"),
        ]
        out = [e for e in events_to_chrome(events) if e["ph"] in "BE"]
        assert [(e["ph"], e["ts"], e["name"]) for e in out] == [
            ("B", 5, "ping"), ("E", 9, "ping"),
            ("B", 12, "pong"), ("E", 20, "pong"),
        ]

    def test_unbalanced_handler_autocloses_at_max_ts(self):
        events = [
            ev(5, 1, "handler", "ping", "from n0"),
            ev(30, 0, "packet", "user_message", ""),
        ]
        spans = [e for e in events_to_chrome(events) if e["ph"] in "BE"]
        assert [(e["ph"], e["ts"]) for e in spans] == [("B", 5), ("E", 30)]

    def test_context_async_pairing_by_cid(self):
        events = [
            ev(0, 0, "context", "spawn", "1:a"),
            ev(2, 0, "context", "spawn", "2:b"),
            ev(8, 0, "context", "finish", "2:b"),
            ev(9, 0, "context", "finish", "1:a"),
        ]
        out = [e for e in events_to_chrome(events) if e["ph"] in "be"]
        by_id = {}
        for e in out:
            by_id.setdefault(e["id"], []).append(e["ph"])
        assert by_id == {"1": ["b", "e"], "2": ["b", "e"]}

    def test_finish_without_spawn_skipped(self):
        events = [ev(8, 0, "context", "finish", "99:pre-trace")]
        out = [e for e in events_to_chrome(events) if e["ph"] in "be"]
        assert out == []

    def test_handler_return_without_entry_skipped(self):
        events = [ev(8, 0, "handler", "ping", "return")]
        assert [e for e in events_to_chrome(events) if e["ph"] in "BE"] == []

    def test_export_perfetto_pid_per_machine(self, tmp_path):
        records = [
            {"label": "m0", "trace": [ev(0, 0, "packet", "p", "")]},
            {"label": "m1", "trace": [ev(0, 0, "packet", "p", "")]},
        ]
        path = tmp_path / "trace.json"
        n = export_perfetto(records, str(path))
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) == n
        assert {e["pid"] for e in doc["traceEvents"]} == {0, 1}


class TestRunManifest:
    def manifest(self):
        return {
            "schema": "repro-run/1",
            "experiment": "fig8",
            "params": {},
            "timings": {"wall_seconds": 0.1},
            "metrics": {"merged_from": 1, "rows": []},
            "cycle_attribution": {
                "machines": 1,
                "total_cycles": 10,
                "per_node": {
                    "0": {"total": 10, "buckets": {"compute": 4, "idle": 6},
                          "by_effect": {}},
                },
            },
        }

    def test_valid_manifest_passes(self):
        assert validate_run_manifest(self.manifest()) == []

    @pytest.mark.parametrize("key", RUN_MANIFEST_REQUIRED)
    def test_missing_key_fails(self, key):
        m = self.manifest()
        del m[key]
        assert any(key in e for e in validate_run_manifest(m))

    def test_bucket_sum_mismatch_fails(self):
        m = self.manifest()
        m["cycle_attribution"]["per_node"]["0"]["buckets"]["compute"] = 5
        errors = validate_run_manifest(m)
        assert any("buckets sum" in e for e in errors)

    def test_total_cycles_mismatch_fails(self):
        m = self.manifest()
        m["cycle_attribution"]["total_cycles"] = 99
        assert any("total_cycles" in e for e in validate_run_manifest(m))

    def test_null_attribution_allowed(self):
        m = self.manifest()
        m["cycle_attribution"] = None
        assert validate_run_manifest(m) == []

    def test_write_validates_and_writes(self, tmp_path):
        path = tmp_path / "run.json"
        src = self.manifest()
        write_run_manifest(
            str(path),
            experiment=src["experiment"],
            params=src["params"],
            timings=src["timings"],
            metrics=src["metrics"],
            cycle_attribution=src["cycle_attribution"],
        )
        assert validate_run_manifest(json.loads(path.read_text())) == []

    def test_write_rejects_broken_attribution(self, tmp_path):
        src = self.manifest()
        src["cycle_attribution"]["per_node"]["0"]["total"] = 999
        with pytest.raises(ValueError):
            write_run_manifest(
                str(tmp_path / "run.json"),
                experiment="x", params={}, timings={},
                metrics=None, cycle_attribution=src["cycle_attribution"],
            )

    def test_validate_cli(self, tmp_path, capsys):
        good = tmp_path / "good.json"
        good.write_text(json.dumps(self.manifest()))
        assert validate_main([str(good)]) == 0
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "repro-run/1"}))
        assert validate_main([str(bad)]) == 1
        assert validate_main([]) == 2

    def test_validate_cli_checks_trace_schema(self, tmp_path):
        good = tmp_path / "good.json"
        good.write_text(json.dumps(self.manifest()))
        trace = tmp_path / "trace.json"
        trace.write_text(json.dumps(
            {"traceEvents": [{"ph": "i", "ts": 0}]}  # missing pid/tid/name
        ))
        assert validate_main([str(good), str(trace)]) == 1


class TestSession:
    def test_session_activates_and_restores(self):
        assert current() is None
        with session(ObsConfig()) as s:
            assert current() is s
        assert current() is None

    def test_make_machine_observed_and_data_idempotent(self):
        from repro.experiments.common import make_machine, run_thread_timed
        from repro.proc import Compute

        with session(ObsConfig(sample_interval=100, trace=True)) as s:
            m = make_machine(n_nodes=2)
            run_thread_timed(m, _compute_gen(500))
            d1 = s.data()
            d2 = s.data()
        assert len(d1["records"]) == 1
        assert d1 is not d2 and d1["records"] == d2["records"]
        rec = d1["records"][0]
        assert rec["cycles"] == 500
        assert rec["samples"]["samples"]
        assert d1["cycle_attribution"]["total_cycles"] == 2 * 500

    def test_disabled_config_attaches_nothing(self):
        from repro.experiments.common import make_machine

        cfg = ObsConfig(metrics=False, profile=False)
        assert not cfg.enabled
        with session(cfg) as s:
            m = make_machine(n_nodes=2)
            assert "_execute" not in m.processor(0).__dict__
            assert s.data()["records"] == []

    def test_absorb_merges_worker_payload(self):
        from repro.experiments.common import make_machine, run_thread_timed
        from repro.proc import Compute

        def one_run():
            with session(ObsConfig()) as s:
                m = make_machine(n_nodes=2)
                run_thread_timed(m, _compute_gen(100))
                return s.data()

        parent = ObsSession(ObsConfig())
        parent.absorb(one_run())
        parent.absorb(one_run())
        d = parent.data()
        assert len(d["records"]) == 2
        assert d["cycle_attribution"]["machines"] == 2
        assert d["metrics"]["merged_from"] == 2

    def test_sweep_results_identical_with_observation(self):
        """jobs=2 under a session: same results, observations absorbed."""
        from repro.perf.sweep import SweepPoint, SweepRunner

        points = [
            SweepPoint("repro.experiments.fig8_accum:measure_point",
                       {"impl": "sm", "nbytes": 64}),
            SweepPoint("repro.experiments.fig8_accum:measure_point",
                       {"impl": "mp", "nbytes": 64}),
        ]
        plain = SweepRunner(jobs=1).map(points)
        with session(ObsConfig()) as s:
            observed = SweepRunner(jobs=2).map(points)
            data = s.data()
        assert observed == plain
        assert len(data["records"]) == 2
        assert data["cycle_attribution"]["machines"] == 2


class TestCliObsFlags:
    def test_acceptance_command_shape(self, tmp_path, capsys):
        from repro.cli import main

        run_json = tmp_path / "run.json"
        trace_json = tmp_path / "trace.json"
        rc = main([
            "fig8_accum", "--quick",
            "--metrics-out", str(run_json),
            "--trace-out", str(trace_json),
            "--sample-interval", "1000",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cycle attribution" in out
        manifest = json.loads(run_json.read_text())
        assert validate_run_manifest(manifest) == []
        assert manifest["experiment"] == "fig8"
        doc = json.loads(trace_json.read_text())
        assert doc["traceEvents"]
        for e in doc["traceEvents"]:
            assert set(TRACE_EVENT_REQUIRED) <= set(e)

    def test_all_with_metrics_out_rejected(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["run", "all", "--quick", "--metrics-out", "x.json"])

    def test_alias_without_flags_is_plain_run(self, capsys):
        from repro.cli import main

        assert main(["fig7_memcpy", "--quick"]) == 0
        assert "message-passing" in capsys.readouterr().out
