"""Model-based stateful testing of the coherence protocol.

A hypothesis RuleBasedStateMachine drives random sequences of
reads/writes/atomics/prefetches/DMA flushes from random nodes against
a 4-node machine, quiescing between steps, and cross-checks the
machine against a trivial sequential reference model:

* values: every read must return exactly what the reference dict holds
* protocol: single-writer/multiple-reader and directory agreement
  invariants must hold at every quiescent point
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.machine import Machine, MachineConfig
from repro.memory import AccessKind, DirState, LineState, make_addr
from repro.proc import FetchOp, Load, Store

N_NODES = 4
N_SLOTS = 6  # distinct addresses (on 3 distinct cache lines x 2 homes)


def _addr(slot: int) -> int:
    home = 1 + (slot % 2)           # homes 1 and 2
    line = slot // 2                # 3 lines per home
    return make_addr(home, 0x100 + line * 16)


class CoherenceMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        self.m = Machine(MachineConfig(n_nodes=N_NODES, cache_lines=4))
        self.reference: dict[int, int] = {}
        self.counter = 0

    # ------------------------------------------------------------------
    def _quiesce(self) -> None:
        self.m.run(max_events=200_000)

    # ------------------------------------------------------------------
    @rule(node=st.integers(0, N_NODES - 1), slot=st.integers(0, N_SLOTS - 1))
    def write(self, node, slot):
        addr = _addr(slot)
        self.counter += 1
        value = self.counter

        def thread():
            yield Store(addr, value)

        self.m.processor(node).run_thread(thread())
        self.reference[addr] = value
        self._quiesce()

    @rule(node=st.integers(0, N_NODES - 1), slot=st.integers(0, N_SLOTS - 1))
    def read(self, node, slot):
        addr = _addr(slot)
        got = []

        def thread():
            v = yield Load(addr)
            got.append(v)

        self.m.processor(node).run_thread(thread())
        self._quiesce()
        assert got == [self.reference.get(addr, 0)], (
            f"node {node} read {got} at slot {slot}, "
            f"expected {self.reference.get(addr, 0)}"
        )

    @rule(node=st.integers(0, N_NODES - 1), slot=st.integers(0, N_SLOTS - 1))
    def atomic_increment(self, node, slot):
        addr = _addr(slot)
        old_box = []

        def thread():
            old = yield FetchOp(addr, lambda v: v + 1)
            old_box.append(old)

        self.m.processor(node).run_thread(thread())
        expected_old = self.reference.get(addr, 0)
        self.reference[addr] = expected_old + 1
        self._quiesce()
        assert old_box == [expected_old]

    @rule(node=st.integers(0, N_NODES - 1), slot=st.integers(0, N_SLOTS - 1))
    def prefetch(self, node, slot):
        self.m.coherence.access(
            node, _addr(slot), AccessKind.PREFETCH, lambda: None
        )
        self._quiesce()

    @rule(slot=st.integers(0, N_SLOTS - 1))
    def dma_flush_home(self, slot):
        """Flush the line at its home (as a local DMA would)."""
        addr = _addr(slot)
        home = addr >> 32
        self.m.coherence.dma_flush(home, addr, 16)
        self._quiesce()

    @rule(
        writer=st.integers(0, N_NODES - 1),
        reader=st.integers(0, N_NODES - 1),
        slot=st.integers(0, N_SLOTS - 1),
    )
    def concurrent_write_read(self, writer, reader, slot):
        """Issue a write and a read in the same cycle; the read must
        return either the old or the new value, never garbage."""
        addr = _addr(slot)
        old = self.reference.get(addr, 0)
        self.counter += 1
        new = self.counter
        got = []

        def w():
            yield Store(addr, new)

        def r():
            v = yield Load(addr)
            got.append(v)

        self.m.processor(writer).run_thread(w())
        if reader != writer:
            self.m.processor(reader).run_thread(r())
        self.reference[addr] = new
        self._quiesce()
        if got:
            assert got[0] in (old, new), f"torn read: {got[0]} not in {(old, new)}"

    # ------------------------------------------------------------------
    @invariant()
    def swmr_and_directory_agreement(self):
        for slot in range(0, N_SLOTS):
            addr = _addr(slot)
            line = addr & ~15
            home = addr >> 32
            exclusive = [
                n for n in range(N_NODES)
                if self.m.nodes[n].cache.state(line)
                in (LineState.MODIFIED, LineState.EXCLUSIVE)
            ]
            shared = [
                n for n in range(N_NODES)
                if self.m.nodes[n].cache.state(line) is LineState.SHARED
            ]
            entry = self.m.nodes[home].directory.peek(line)
            assert len(exclusive) <= 1
            if exclusive:
                assert not shared
                assert entry is not None
                assert entry.state is DirState.EXCLUSIVE
                assert entry.owner == exclusive[0]
            if entry is not None and shared:
                assert set(shared) <= entry.sharers

    @invariant()
    def no_stuck_transactions(self):
        for node in range(N_NODES):
            assert not self.m.coherence._mshr[node], (
                f"MSHR not empty at quiescence: {self.m.coherence._mshr[node]}"
            )
        assert not self.m.coherence._line_busy


TestCoherenceStateful = CoherenceMachine.TestCase
TestCoherenceStateful.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
