"""Tests for the CLI entry point."""

import pytest

from repro.cli import QUICK_ARGS, main, run_experiment
from repro.experiments import ALL_EXPERIMENTS


def test_quick_args_cover_all_experiments():
    assert set(QUICK_ARGS) == set(ALL_EXPERIMENTS)


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for exp_id in ALL_EXPERIMENTS:
        assert exp_id in out


def test_run_quick_fig7(capsys):
    assert main(["run", "fig7", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "message-passing" in out
    assert "took" in out


def test_run_quick_barrier_with_nodes(capsys):
    assert main(["run", "barrier", "--quick", "--nodes", "16"]) == 0
    out = capsys.readouterr().out
    assert "16 processors" in out


def test_nodes_rejected_for_fixed_experiments():
    with pytest.raises(SystemExit):
        run_experiment("fig7", quick=True, nodes=8)


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["run", "nope"])


def test_run_experiment_returns_table():
    text = run_experiment("fig8", quick=True)
    assert "accum" in text


def test_run_with_plot(capsys):
    assert main(["run", "fig7", "--quick", "--plot"]) == 0
    out = capsys.readouterr().out
    assert "log-log" in out
    assert "*=no-prefetching" in out


def test_plot_result_returns_none_for_tables():
    from repro.analysis.tables import ExperimentResult
    from repro.cli import plot_result

    res = ExperimentResult(exp_id="barrier", title="t", columns=["a"])
    assert plot_result(res) is None


def test_demo_command(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "machine report" in out
    assert "trace:" in out
    assert "speedup" in out


def test_version_prints_version_and_fingerprint(capsys):
    import repro
    from repro.perf.cache import repo_fingerprint

    assert main(["--version"]) == 0
    out = capsys.readouterr().out
    assert f"alewife-repro {repro.__version__}" in out
    fingerprint = out.rsplit(":", 1)[1].strip()
    assert fingerprint == repo_fingerprint()
    assert len(fingerprint) == 64 and int(fingerprint, 16) >= 0


def test_tail_requires_job_id_or_all():
    with pytest.raises(SystemExit, match="JOB_ID or --all"):
        main(["tail"])
    with pytest.raises(SystemExit, match="JOB_ID or --all"):
        main(["tail", "abc123", "--all"])


def test_serve_tail_rewrites_to_tail():
    # 'serve tail' must reach the tail subcommand, not the daemon;
    # with neither a job id nor --all it exits with tail's usage error
    with pytest.raises(SystemExit, match="JOB_ID or --all"):
        main(["serve", "tail"])


def test_event_line_renders_each_event_kind():
    from repro.cli import _event_line

    snap = _event_line({
        "event": "snapshot", "queue_position": 2,
        "job": {"id": "ab", "state": "queued",
                "progress": {"done": 1, "total": 4}},
    })
    assert "job=ab" in snap and "queue_position=2" in snap
    assert "progress=1/4" in snap
    prog = _event_line({
        "event": "progress", "done": 3, "total": 8,
        "point": "measure_point[2]", "cache_hits": 1,
    })
    assert prog == "progress 3/8 point=measure_point[2] cache_hits=1"
    assert _event_line({"event": "heartbeat", "queue_position": 5}) == (
        "heartbeat queue_position=5"
    )
    done = _event_line({"event": "done", "job": "ab", "dedup": True})
    assert done == "done job=ab dedup=True"
    failed = _event_line({"event": "failed", "job": "ab", "error": "boom"})
    assert "error=boom" in failed


def test_job_line_includes_progress_and_run_seconds():
    from repro.cli import _job_line

    line = _job_line({
        "id": "ab", "state": "running", "dedup": False, "priority": 0,
        "key": "k" * 64, "run_seconds": None,
        "progress": {"done": 2, "total": 5},
    })
    assert "progress=2/5" in line
    line = _job_line({
        "id": "ab", "state": "done", "dedup": False, "priority": 0,
        "key": "k" * 64, "run_seconds": 1.5, "progress": None,
    })
    assert "wall=1.50s" in line
