"""Tests for addresses, backing store, cache, and directory."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import (
    BackingStore,
    Cache,
    Directory,
    DirState,
    LineState,
    home_of,
    line_of,
    line_range,
    make_addr,
    offset_of,
)


class TestAddress:
    def test_roundtrip(self):
        a = make_addr(5, 0x1234)
        assert home_of(a) == 5
        assert offset_of(a) == 0x1234

    def test_node_zero(self):
        a = make_addr(0, 64)
        assert home_of(a) == 0 and offset_of(a) == 64

    def test_negative_node_rejected(self):
        with pytest.raises(ValueError):
            make_addr(-1, 0)

    def test_offset_out_of_range(self):
        with pytest.raises(ValueError):
            make_addr(0, 1 << 32)

    def test_line_alignment(self):
        assert line_of(0x13, 16) == 0x10
        assert line_of(0x10, 16) == 0x10
        assert line_of(0x1F, 16) == 0x10
        assert line_of(0x20, 16) == 0x20

    def test_line_of_preserves_home(self):
        a = make_addr(7, 0x103)
        assert home_of(line_of(a)) == 7

    def test_line_range_covers_span(self):
        r = list(line_range(0x18, 16, 16))  # straddles two lines
        assert r == [0x10, 0x20]

    def test_line_range_empty(self):
        assert list(line_range(0x10, 0, 16)) == []

    def test_line_range_exact_lines(self):
        assert list(line_range(0x20, 32, 16)) == [0x20, 0x30]

    @given(st.integers(0, 1000), st.integers(0, 2**20))
    @settings(max_examples=50)
    def test_roundtrip_property(self, node, offset):
        a = make_addr(node, offset)
        assert home_of(a) == node
        assert offset_of(a) == offset


class TestBackingStore:
    def test_default_zero(self):
        s = BackingStore()
        assert s.read(0x100) == 0

    def test_write_read(self):
        s = BackingStore()
        s.write(0x100, 42)
        assert s.read(0x100) == 42

    def test_arbitrary_values(self):
        s = BackingStore()
        s.write(8, 3.14)
        assert s.read(8) == 3.14

    def test_copy_range(self):
        s = BackingStore()
        for i in range(8):
            s.write(0x100 + i * 4, i * 10)
        s.copy_range(0x100, 0x200, 32)
        assert [s.read(0x200 + i * 4) for i in range(8)] == [i * 10 for i in range(8)]

    def test_copy_range_clears_stale_destination(self):
        s = BackingStore()
        s.write(0x200, 99)
        s.copy_range(0x100, 0x200, 4)  # source empty -> dest reads 0
        assert s.read(0x200) == 0

    def test_copy_range_negative_rejected(self):
        with pytest.raises(ValueError):
            BackingStore().copy_range(0, 8, -4)

    def test_atomic_rmw(self):
        s = BackingStore()
        s.write(0x10, 5)
        old, new = s.atomically(0x10, lambda v: v + 3)
        assert (old, new) == (5, 8)
        assert s.read(0x10) == 8

    def test_read_range(self):
        s = BackingStore()
        for i in range(4):
            s.write(i * 8, i)
        assert s.read_range(0, 4, 8) == [0, 1, 2, 3]


class TestCache:
    def test_initially_invalid(self):
        c = Cache(0, capacity_lines=4)
        assert c.state(0x100) is LineState.INVALID
        assert not c.lookup(0x100, for_write=False)

    def test_fill_then_hit(self):
        c = Cache(0, capacity_lines=4)
        c.fill(0x100, LineState.SHARED)
        assert c.lookup(0x100, for_write=False)
        assert c.stats.hits == 1

    def test_shared_line_misses_for_write(self):
        c = Cache(0, capacity_lines=4)
        c.fill(0x100, LineState.SHARED)
        assert not c.lookup(0x100, for_write=True)

    def test_modified_hits_for_both(self):
        c = Cache(0, capacity_lines=4)
        c.fill(0x100, LineState.MODIFIED)
        assert c.lookup(0x100, for_write=True)
        assert c.lookup(0x100, for_write=False)

    def test_lru_eviction_order(self):
        c = Cache(0, capacity_lines=2)
        c.fill(0x100, LineState.SHARED)
        c.fill(0x200, LineState.SHARED)
        c.lookup(0x100, for_write=False)  # 0x200 now LRU
        c.fill(0x300, LineState.SHARED)
        assert c.state(0x200) is LineState.INVALID
        assert c.state(0x100) is LineState.SHARED

    def test_evicting_dirty_line_returns_victim(self):
        c = Cache(0, capacity_lines=1)
        c.fill(0x100, LineState.MODIFIED)
        victim = c.fill(0x200, LineState.SHARED)
        assert victim == 0x100
        assert c.stats.writebacks == 1

    def test_evicting_clean_line_silent(self):
        c = Cache(0, capacity_lines=1)
        c.fill(0x100, LineState.SHARED)
        assert c.fill(0x200, LineState.SHARED) is None

    def test_refill_same_line_no_eviction(self):
        c = Cache(0, capacity_lines=1)
        c.fill(0x100, LineState.SHARED)
        assert c.fill(0x100, LineState.MODIFIED) is None
        assert c.state(0x100) is LineState.MODIFIED

    def test_invalidate(self):
        c = Cache(0, capacity_lines=4)
        c.fill(0x100, LineState.SHARED)
        assert c.invalidate(0x100) is LineState.SHARED
        assert c.state(0x100) is LineState.INVALID
        assert c.invalidate(0x100) is LineState.INVALID  # idempotent

    def test_set_state_on_absent_line_raises(self):
        c = Cache(0, capacity_lines=4)
        with pytest.raises(KeyError):
            c.set_state(0x100, LineState.SHARED)

    def test_set_state_invalid_drops(self):
        c = Cache(0, capacity_lines=4)
        c.fill(0x100, LineState.MODIFIED)
        c.set_state(0x100, LineState.INVALID)
        assert c.state(0x100) is LineState.INVALID

    def test_flush_range(self):
        c = Cache(0, capacity_lines=8, line_size=16)
        c.fill(0x100, LineState.MODIFIED)
        c.fill(0x110, LineState.SHARED)
        c.fill(0x200, LineState.SHARED)
        dropped = c.flush_range(0x100, 32)
        assert dict(dropped) == {0x100: LineState.MODIFIED, 0x110: LineState.SHARED}
        assert c.state(0x200) is LineState.SHARED

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            Cache(0, capacity_lines=0)

    def test_bad_line_size(self):
        with pytest.raises(ValueError):
            Cache(0, capacity_lines=4, line_size=12)

    @given(st.lists(st.tuples(st.integers(0, 15), st.booleans()), max_size=60))
    @settings(max_examples=30)
    def test_capacity_never_exceeded(self, ops):
        c = Cache(0, capacity_lines=4, line_size=16)
        for line_idx, dirty in ops:
            c.fill(line_idx * 16, LineState.MODIFIED if dirty else LineState.SHARED)
            assert len(c) <= 4


class TestDirectory:
    def test_fresh_entry_unowned(self):
        d = Directory(0)
        e = d.entry(0x100)
        assert e.state is DirState.UNOWNED
        e.check()

    def test_add_sharer(self):
        d = Directory(0)
        overflow = d.add_sharer(0x100, 3)
        assert not overflow
        e = d.entry(0x100)
        assert e.state is DirState.SHARED and e.sharers == {3}
        e.check()

    def test_overflow_beyond_hw_pointers(self):
        d = Directory(0, hw_pointers=2)
        assert not d.add_sharer(0x100, 1)
        assert not d.add_sharer(0x100, 2)
        assert d.add_sharer(0x100, 3)  # third sharer overflows 2 pointers
        assert d.stats.software_traps == 1

    def test_set_exclusive_clears_sharers(self):
        d = Directory(0)
        d.add_sharer(0x100, 1)
        d.add_sharer(0x100, 2)
        d.set_exclusive(0x100, 7)
        e = d.entry(0x100)
        assert e.state is DirState.EXCLUSIVE and e.owner == 7 and not e.sharers
        e.check()

    def test_add_sharer_while_exclusive_raises(self):
        d = Directory(0)
        d.set_exclusive(0x100, 1)
        with pytest.raises(ValueError):
            d.add_sharer(0x100, 2)

    def test_clear(self):
        d = Directory(0)
        d.set_exclusive(0x100, 1)
        d.clear(0x100)
        assert d.entry(0x100).state is DirState.UNOWNED

    def test_drop_sharer_to_unowned(self):
        d = Directory(0)
        d.add_sharer(0x100, 1)
        d.drop_sharer(0x100, 1)
        assert d.entry(0x100).state is DirState.UNOWNED

    def test_drop_missing_sharer_noop(self):
        d = Directory(0)
        d.add_sharer(0x100, 1)
        d.drop_sharer(0x100, 9)
        assert d.entry(0x100).sharers == {1}

    def test_sharers_to_invalidate_excludes_and_sorts(self):
        d = Directory(0)
        for n in (5, 1, 9):
            d.add_sharer(0x100, n)
        assert d.sharers_to_invalidate(0x100, excluding=5) == [1, 9]

    def test_hw_pointers_validation(self):
        with pytest.raises(ValueError):
            Directory(0, hw_pointers=0)

    def test_peek_does_not_create(self):
        d = Directory(0)
        assert d.peek(0x500) is None
        assert len(d) == 0
