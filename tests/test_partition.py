"""Partitioned parallel simulation (repro.perf.partition).

Three layers of guarantees:

1. **Golden cycle identity** — a run split across node-sharded engines
   must produce *exactly* the serial answer for the pinned
   configurations (fig11 jacobi in both modes, the MP combining-tree
   barrier at every shard count, the SM barrier at <=2 shards; SM at
   higher shard counts is covered by the determinism test — see
   docs/PERFORMANCE.md for the shard-local link-reservation
   approximation that makes it inexact by a few cycles).
2. **Determinism** — the same partitioned configuration produces the
   same answer on every run, and sequential window grants match
   parallel grants (worker interleaving cannot leak into results).
3. **Protocol safety** — the conservative-lookahead invariant holds
   for arbitrary cross-shard send patterns (hypothesis), and the
   validation/abort paths fail loudly.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perf.partition import (
    PartitionError,
    PartitionPlan,
    ShardView,
    run_partitioned,
    validate_partitions,
)
from repro.sim.engine import SimulationError

FIG11 = "repro.experiments.fig11_jacobi:measure_jacobi"
BARRIER = "repro.experiments.barrier_exp:measure_point"

FIG11_KW = dict(grid_size=32, n_nodes=16, iters=3)
MP_BARRIER_KW = dict(impl="mp", n_nodes=16, episodes=2)
SM_BARRIER_KW = dict(impl="sm", n_nodes=8, episodes=2)


def _serial(fn_spec: str, kwargs: dict):
    from repro.perf.sweep import SweepPoint

    return SweepPoint(fn_spec, kwargs).resolve()(**kwargs)


@pytest.fixture(scope="module")
def serial_fig11():
    return {
        mode: _serial(FIG11, dict(FIG11_KW, mode=mode)) for mode in ("sm", "mp")
    }


@pytest.fixture(scope="module")
def serial_mp_barrier():
    return _serial(BARRIER, MP_BARRIER_KW)


@pytest.fixture(scope="module")
def serial_sm_barrier():
    return _serial(BARRIER, SM_BARRIER_KW)


# ----------------------------------------------------------------------
# Golden cycle identity vs serial
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mode", ["sm", "mp"])
@pytest.mark.parametrize("k", [2, 4])
def test_fig11_partitioned_matches_serial(mode, k, serial_fig11):
    got = run_partitioned(FIG11, dict(FIG11_KW, mode=mode), 16, k)
    assert got == serial_fig11[mode], (
        f"fig11 {mode} at {k} shards diverged from serial"
    )


def test_single_shard_is_pristine_serial(serial_fig11):
    # partitions=1 short-circuits to the unwindowed serial drain
    got = run_partitioned(FIG11, dict(FIG11_KW, mode="mp"), 16, 1)
    assert got == serial_fig11["mp"]


@pytest.mark.parametrize("k", [2, 4])
def test_mp_barrier_partitioned_matches_serial(k, serial_mp_barrier):
    got = run_partitioned(BARRIER, dict(MP_BARRIER_KW), 16, k)
    assert got == serial_mp_barrier


def test_sm_barrier_partitioned_matches_serial(serial_sm_barrier):
    got = run_partitioned(BARRIER, dict(SM_BARRIER_KW), 8, 2)
    assert got == serial_sm_barrier


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------
def test_sequential_grant_matches_parallel():
    kw = dict(SM_BARRIER_KW)
    parallel = run_partitioned(BARRIER, kw, 8, 2)
    sequential = run_partitioned(BARRIER, kw, 8, 2, sequential=True)
    assert parallel == sequential


def test_sm_barrier_four_shards_deterministic():
    # Regression: this configuration livelocked before depth-0 pending
    # stores were overlaid into forward-writeback deposits (a spin flag
    # written between coherence grant and the scheduled store.write was
    # lost from the relinquishing shard's snapshot). max_events bounds
    # the failure mode to an error instead of a hang.
    kw = dict(impl="sm", n_nodes=16, episodes=2)
    a = run_partitioned(BARRIER, kw, 16, 4, max_events=2_000_000)
    b = run_partitioned(BARRIER, kw, 16, 4, max_events=2_000_000)
    assert a == b


# ----------------------------------------------------------------------
# Plan and validation
# ----------------------------------------------------------------------
@given(
    n_nodes=st.integers(min_value=1, max_value=1024),
    n_shards=st.integers(min_value=1, max_value=64),
)
def test_partition_plan_covers_every_node(n_nodes, n_shards):
    if n_shards > n_nodes:
        with pytest.raises(ValueError):
            PartitionPlan(n_nodes, n_shards)
        return
    plan = PartitionPlan(n_nodes, n_shards)
    lo = 0
    sizes = []
    for s, (a, b) in enumerate(plan.bounds):
        assert a == lo, "ranges must be contiguous"
        assert b > a, "every shard owns at least one node"
        sizes.append(b - a)
        for node in (a, b - 1):
            assert plan.shard_of(node) == s
        lo = b
    assert lo == n_nodes, "ranges must cover all nodes"
    assert max(sizes) - min(sizes) <= 1, "ranges must be near-equal"


def test_validate_partitions_rejects_bad_inputs():
    assert validate_partitions(4, 64) == 4
    with pytest.raises(ValueError, match="must be an integer"):
        validate_partitions(True, 64)
    with pytest.raises(ValueError, match="must be an integer"):
        validate_partitions("2", 64)
    with pytest.raises(ValueError, match=r"\[1, 64\]"):
        validate_partitions(0, 64)
    with pytest.raises(ValueError, match=r"\[1, 64\]"):
        validate_partitions(65, 128)
    with pytest.raises(ValueError, match="cannot exceed n_nodes"):
        validate_partitions(8, 4)


def test_checkers_rejected():
    from repro.obs.session import ObsConfig

    cfg = ObsConfig(check=("race",))
    with pytest.raises(ValueError, match="global view"):
        run_partitioned(BARRIER, dict(SM_BARRIER_KW), 8, 2, obs_cfg=cfg)


def test_max_events_aborts_runaway():
    with pytest.raises(SimulationError, match="max_events"):
        run_partitioned(BARRIER, dict(SM_BARRIER_KW), 8, 2, max_events=50)


# ----------------------------------------------------------------------
# Conservative lookahead: no send pattern can violate the window
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(
    sends=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=200),  # cycle gap
            st.integers(min_value=0, max_value=3),    # src (shard 0)
            st.integers(min_value=4, max_value=7),    # dst (shard 1)
            st.integers(min_value=1, max_value=32),   # size_words
        ),
        min_size=1,
        max_size=30,
    )
)
def test_random_cross_shard_sends_respect_lookahead(sends):
    """Every egress record must arrive >= L cycles after its send, even
    under arbitrary contention on the sending shard's own links —
    otherwise a window barrier could deliver a packet late."""
    import repro.perf.partition as partition
    from repro.experiments.common import make_machine
    from repro.network.packet import Packet, PacketKind

    plan = PartitionPlan(8, 2)
    view = ShardView(plan, 0, conn=None)
    partition._CURRENT = view
    try:
        m = make_machine(8)
    finally:
        partition._CURRENT = None
    net = m.network
    lookahead = view.lookahead
    assert lookahead == net.min_cross_latency() >= 1
    now = 0
    for gap, src, dst, words in sends:
        now += gap
        m.sim.now = now
        net.send(Packet(src, dst, PacketKind.USER_MESSAGE, words, ("m", now)))
    records = view._egress
    assert len(records) == len(sends)
    seqs = [rec[0] for rec in records]
    assert seqs == sorted(seqs), "egress must preserve send order"
    for rec in records:
        _seq, send, arrival, _src, _dst, kind, _words, spec, deposit = rec
        assert arrival - send >= lookahead, (
            f"lookahead violated: sent {send}, arrives {arrival}, L={lookahead}"
        )
        assert kind == "USER_MESSAGE" and spec[0] == "msg" and deposit is None


# ----------------------------------------------------------------------
# Serve integration: spec validation and run-store keying
# ----------------------------------------------------------------------
class TestServeSpecs:
    def _ex(self):
        from repro.serve.executor import ExperimentExecutor

        return ExperimentExecutor()

    def test_partitions_resolved_into_kwargs(self):
        _, kwargs, _ = self._ex().resolve(
            {"experiment": "fig11", "quick": True, "partitions": 2}
        )
        assert kwargs["partitions"] == 2

    def test_partitions_validated_against_node_count(self):
        with pytest.raises(ValueError, match="cannot exceed n_nodes"):
            self._ex().resolve(
                {"experiment": "fig11", "nodes": 4, "partitions": 8}
            )

    def test_partitions_is_not_a_param(self):
        with pytest.raises(ValueError, match="top-level spec key"):
            self._ex().resolve(
                {"experiment": "fig11", "params": {"partitions": 2}}
            )

    def test_partitions_rejected_with_check(self):
        with pytest.raises(ValueError, match="global view"):
            self._ex().resolve(
                {"experiment": "fig11", "partitions": 2, "check": ["race"]}
            )

    def test_partitioned_and_serial_specs_share_a_run_key(self):
        # 'partitions' is an execution strategy, not an input: both
        # specs must dedupe onto the same store entry
        ex = self._ex()
        base = {"experiment": "fig11", "quick": True}
        assert ex.key_for(base) == ex.key_for({**base, "partitions": 4})
        # ...while a real input change still produces a fresh key
        # (32 differs from the quick config's node count)
        assert ex.key_for(base) != ex.key_for({**base, "nodes": 32})
