"""Integration tests for the directory coherence protocol engine."""

import pytest

from repro.memory import (
    AccessKind,
    Cache,
    CoherenceEngine,
    CoherenceParams,
    Directory,
    DirState,
    LineState,
    make_addr,
)
from repro.network import Mesh2D, Network
from repro.sim import Resource, Simulator


def make_engine(n_nodes=4, cache_lines=64, params=None, hw_pointers=5):
    sim = Simulator()
    net = Network(sim, Mesh2D(n_nodes))
    eng = CoherenceEngine(sim, net, params=params)
    for node in range(n_nodes):
        cache = Cache(node, capacity_lines=cache_lines)
        directory = Directory(node, hw_pointers=hw_pointers)
        eng.add_node(node, cache, directory, Resource(sim, f"mem{node}"))
        net.attach(node, eng.handle_packet)
    return sim, net, eng


def do_access(sim, eng, node, addr, kind):
    """Run one access to completion; returns elapsed cycles."""
    start = sim.now
    done = []
    eng.access(node, addr, kind, lambda: done.append(sim.now))
    sim.run()
    assert done, "access never completed"
    return done[0] - start


class TestBasicTransactions:
    def test_remote_read_miss_then_hit(self):
        sim, net, eng = make_engine()
        addr = make_addr(1, 0x100)
        miss = do_access(sim, eng, 0, addr, AccessKind.READ)
        hit = do_access(sim, eng, 0, addr, AccessKind.READ)
        assert hit == eng.p.load_hit
        assert miss > 4 * hit
        assert eng.caches[0].state(addr & ~15) is LineState.SHARED

    def test_local_read_miss_cheaper_than_remote(self):
        sim, net, eng = make_engine()
        local = do_access(sim, eng, 0, make_addr(0, 0x100), AccessKind.READ)
        sim2, net2, eng2 = make_engine()
        remote = do_access(sim2, eng2, 0, make_addr(3, 0x100), AccessKind.READ)
        assert local < remote

    def test_write_miss_gets_modified(self):
        sim, net, eng = make_engine()
        addr = make_addr(1, 0x200)
        do_access(sim, eng, 0, addr, AccessKind.WRITE)
        assert eng.caches[0].state(addr & ~15) is LineState.MODIFIED
        e = eng.dirs[1].peek(addr & ~15)
        assert e.state is DirState.EXCLUSIVE and e.owner == 0

    def test_store_hit_on_modified(self):
        sim, net, eng = make_engine()
        addr = make_addr(1, 0x200)
        do_access(sim, eng, 0, addr, AccessKind.WRITE)
        assert do_access(sim, eng, 0, addr, AccessKind.WRITE) == eng.p.store_hit

    def test_read_sets_directory_sharer(self):
        sim, net, eng = make_engine()
        addr = make_addr(2, 0x300)
        do_access(sim, eng, 0, addr, AccessKind.READ)
        do_access(sim, eng, 1, addr, AccessKind.READ)
        e = eng.dirs[2].peek(addr & ~15)
        assert e.state is DirState.SHARED and e.sharers == {0, 1}


class TestInvalidation:
    def test_write_invalidates_sharers(self):
        sim, net, eng = make_engine()
        addr = make_addr(3, 0x100)
        line = addr & ~15
        for reader in (0, 1):
            do_access(sim, eng, reader, addr, AccessKind.READ)
        do_access(sim, eng, 2, addr, AccessKind.WRITE)
        assert eng.caches[0].state(line) is LineState.INVALID
        assert eng.caches[1].state(line) is LineState.INVALID
        assert eng.caches[2].state(line) is LineState.MODIFIED
        assert eng.stats.invalidations == 2

    def test_write_to_shared_costs_more_than_unowned(self):
        sim, net, eng = make_engine()
        addr = make_addr(3, 0x100)
        unowned_cost = do_access(sim, eng, 2, make_addr(3, 0x500), AccessKind.WRITE)
        for reader in (0, 1):
            do_access(sim, eng, reader, addr, AccessKind.READ)
        shared_cost = do_access(sim, eng, 2, addr, AccessKind.WRITE)
        assert shared_cost > unowned_cost

    def test_store_to_own_shared_line_reissues_write_miss(self):
        """Without the upgrade optimization a store to a SHARED line is
        a full write transaction (key to Fig. 7's prefetch behaviour)."""
        sim, net, eng = make_engine()
        addr = make_addr(1, 0x100)
        do_access(sim, eng, 0, addr, AccessKind.READ)
        writes_before = eng.stats.write_misses
        cost = do_access(sim, eng, 0, addr, AccessKind.WRITE)
        assert eng.stats.write_misses == writes_before + 1
        assert cost > eng.p.store_hit
        assert eng.caches[0].state(addr & ~15) is LineState.MODIFIED

    def test_home_own_copy_invalidated_on_remote_write(self):
        sim, net, eng = make_engine()
        addr = make_addr(1, 0x700)
        line = addr & ~15
        do_access(sim, eng, 1, addr, AccessKind.READ)   # home caches own line
        do_access(sim, eng, 0, addr, AccessKind.WRITE)
        assert eng.caches[1].state(line) is LineState.INVALID
        assert eng.caches[0].state(line) is LineState.MODIFIED


class TestDirtyRemote:
    def test_read_of_dirty_line_forwards(self):
        sim, net, eng = make_engine()
        addr = make_addr(2, 0x400)
        line = addr & ~15
        do_access(sim, eng, 0, addr, AccessKind.WRITE)   # node 0 owns dirty
        cost = do_access(sim, eng, 1, addr, AccessKind.READ)
        assert eng.stats.forwards == 1
        assert eng.caches[0].state(line) is LineState.SHARED
        assert eng.caches[1].state(line) is LineState.SHARED
        e = eng.dirs[2].peek(line)
        assert e.state is DirState.SHARED and e.sharers == {0, 1}
        # three-legged transaction costs more than a clean read
        sim2, net2, eng2 = make_engine()
        clean = do_access(sim2, eng2, 1, addr, AccessKind.READ)
        assert cost > clean

    def test_write_of_dirty_line_transfers_ownership(self):
        sim, net, eng = make_engine()
        addr = make_addr(2, 0x400)
        line = addr & ~15
        do_access(sim, eng, 0, addr, AccessKind.WRITE)
        do_access(sim, eng, 1, addr, AccessKind.WRITE)
        assert eng.caches[0].state(line) is LineState.INVALID
        assert eng.caches[1].state(line) is LineState.MODIFIED
        e = eng.dirs[2].peek(line)
        assert e.state is DirState.EXCLUSIVE and e.owner == 1

    def test_dirty_in_home_own_cache(self):
        sim, net, eng = make_engine()
        addr = make_addr(2, 0x800)
        line = addr & ~15
        do_access(sim, eng, 2, addr, AccessKind.WRITE)   # home dirties own line
        do_access(sim, eng, 0, addr, AccessKind.READ)
        assert eng.caches[2].state(line) is LineState.SHARED
        assert eng.caches[0].state(line) is LineState.SHARED


class TestEviction:
    def test_dirty_eviction_writes_back_and_clears_directory(self):
        sim, net, eng = make_engine(cache_lines=1)
        a1 = make_addr(1, 0x100)
        a2 = make_addr(1, 0x200)
        do_access(sim, eng, 0, a1, AccessKind.WRITE)
        do_access(sim, eng, 0, a2, AccessKind.WRITE)  # evicts a1
        sim.run()
        assert eng.caches[0].state(a1 & ~15) is LineState.INVALID
        assert eng.stats.writebacks == 1
        e = eng.dirs[1].peek(a1 & ~15)
        assert e.state is DirState.UNOWNED

    def test_reread_after_eviction_misses_again(self):
        sim, net, eng = make_engine(cache_lines=1)
        a1 = make_addr(1, 0x100)
        a2 = make_addr(1, 0x200)
        do_access(sim, eng, 0, a1, AccessKind.READ)
        do_access(sim, eng, 0, a2, AccessKind.READ)
        cost = do_access(sim, eng, 0, a1, AccessKind.READ)
        assert cost > eng.p.load_hit


class TestPrefetch:
    def test_prefetch_fills_shared_in_background(self):
        sim, net, eng = make_engine()
        addr = make_addr(1, 0x600)
        issue = do_access(sim, eng, 0, addr, AccessKind.PREFETCH)
        assert issue == eng.p.prefetch_issue
        sim.run()
        assert eng.caches[0].state(addr & ~15) is LineState.SHARED
        hit = do_access(sim, eng, 0, addr, AccessKind.READ)
        assert hit == eng.p.load_hit

    def test_prefetch_issue_nonblocking(self):
        """The prefetch on_done fires long before the fill lands."""
        sim, net, eng = make_engine()
        addr = make_addr(3, 0x600)
        done_at = []
        eng.access(0, addr, AccessKind.PREFETCH, lambda: done_at.append(sim.now))
        sim.run()
        assert done_at[0] == eng.p.prefetch_issue
        assert sim.now > done_at[0]

    def test_demand_read_merges_with_prefetch(self):
        sim, net, eng = make_engine()
        addr = make_addr(1, 0x600)
        order = []
        eng.access(0, addr, AccessKind.PREFETCH, lambda: order.append("pf"))
        eng.access(0, addr, AccessKind.READ, lambda: order.append("rd"))
        sim.run()
        assert order == ["pf", "rd"]
        # exactly one transaction went to the home
        assert eng.stats.transactions == 1

    def test_prefetch_slots_limit(self):
        params = CoherenceParams(prefetch_slots=1)
        sim, net, eng = make_engine(params=params)
        eng.access(0, make_addr(1, 0x100), AccessKind.PREFETCH, lambda: None)
        eng.access(0, make_addr(1, 0x200), AccessKind.PREFETCH, lambda: None)
        sim.run()
        assert eng.stats.prefetches_issued == 1
        assert eng.stats.prefetches_dropped == 1

    def test_prefetch_to_cached_line_is_noop(self):
        sim, net, eng = make_engine()
        addr = make_addr(1, 0x100)
        do_access(sim, eng, 0, addr, AccessKind.READ)
        before = eng.stats.transactions
        do_access(sim, eng, 0, addr, AccessKind.PREFETCH)
        assert eng.stats.transactions == before

    def test_write_after_prefetch_upgrades(self):
        """A store behind an in-flight prefetch waits for the S fill and
        then issues its own write transaction."""
        sim, net, eng = make_engine()
        addr = make_addr(1, 0x600)
        done = []
        eng.access(0, addr, AccessKind.PREFETCH, lambda: None)
        eng.access(0, addr, AccessKind.WRITE, lambda: done.append(sim.now))
        sim.run()
        assert done
        assert eng.caches[0].state(addr & ~15) is LineState.MODIFIED
        assert eng.stats.transactions == 2  # prefetch + write


class TestContention:
    def test_same_line_requests_serialize_at_home(self):
        sim, net, eng = make_engine()
        addr = make_addr(3, 0x100)
        done = {}
        eng.access(0, addr, AccessKind.WRITE, lambda: done.setdefault(0, sim.now))
        eng.access(1, addr, AccessKind.WRITE, lambda: done.setdefault(1, sim.now))
        sim.run()
        assert len(done) == 2
        assert done[1] != done[0]
        # the loser needed ownership stolen from the winner
        assert eng.stats.forwards >= 1 or eng.stats.invalidations >= 1

    def test_hot_home_port_backs_up(self):
        """Many same-home misses take longer per miss than a lone miss."""
        sim, net, eng = make_engine(16)
        lone = do_access(sim, eng, 0, make_addr(1, 0x9000), AccessKind.READ)
        sim2, net2, eng2 = make_engine(16)
        done = []
        for requester in range(2, 10):
            eng2.access(
                requester,
                make_addr(1, 0x100 + 0x10 * requester),
                AccessKind.READ,
                lambda: done.append(sim2.now),
            )
        sim2.run()
        assert len(done) == 8
        assert max(done) > lone

    def test_limitless_overflow_charges_trap(self):
        params = CoherenceParams(trap_cycles=100)
        sim, net, eng = make_engine(n_nodes=16, params=params, hw_pointers=2)
        addr = make_addr(0, 0x100)
        for reader in range(1, 8):
            do_access(sim, eng, reader, addr, AccessKind.READ)
        assert eng.dirs[0].stats.software_traps > 0
        # invalidating the overflowed line pays the trap cost
        cost = do_access(sim, eng, 8, addr, AccessKind.WRITE)
        sim2, net2, eng2 = make_engine(n_nodes=16, params=params, hw_pointers=2)
        lone = do_access(sim2, eng2, 8, addr, AccessKind.WRITE)
        assert cost > lone + params.trap_cycles // 2


class TestDmaFlush:
    def test_flush_invalidates_and_fixes_directory(self):
        sim, net, eng = make_engine()
        addr = make_addr(0, 0x100)
        line = addr & ~15
        do_access(sim, eng, 0, addr, AccessKind.WRITE)
        dirty = eng.dma_flush(0, addr, 16)
        assert dirty == 1
        assert eng.caches[0].state(line) is LineState.INVALID
        assert eng.dirs[0].peek(line).state is DirState.UNOWNED

    def test_flush_clean_lines_counts_zero_dirty(self):
        sim, net, eng = make_engine()
        addr = make_addr(0, 0x100)
        do_access(sim, eng, 0, addr, AccessKind.READ)
        assert eng.dma_flush(0, addr, 16) == 0

    def test_flush_leaves_third_party_copies(self):
        sim, net, eng = make_engine()
        addr = make_addr(0, 0x100)
        line = addr & ~15
        do_access(sim, eng, 0, addr, AccessKind.READ)
        do_access(sim, eng, 1, addr, AccessKind.READ)
        eng.dma_flush(0, addr, 16)
        assert eng.caches[1].state(line) is LineState.SHARED
        assert eng.dirs[0].peek(line).sharers == {1}


class TestUpgradeOptimization:
    def test_upgrade_cheaper_when_enabled(self):
        base = CoherenceParams(upgrade_optimization=False)
        opt = CoherenceParams(upgrade_optimization=True)
        costs = {}
        for name, params in (("base", base), ("opt", opt)):
            sim, net, eng = make_engine(params=params)
            addr = make_addr(1, 0x100)
            do_access(sim, eng, 0, addr, AccessKind.READ)
            costs[name] = do_access(sim, eng, 0, addr, AccessKind.WRITE)
        assert costs["opt"] <= costs["base"]
