"""Tests for the reliable delivery layer and reliable-mode primitives."""

import pytest

from repro.faults import FaultInjector, FaultPlan, FaultRates, lossy_plan
from repro.machine import Machine, MachineConfig
from repro.proc import Compute
from repro.runtime import Runtime
from repro.runtime.barrier import MPTreeBarrier
from repro.runtime.bulk import BulkTransfer
from repro.runtime.reliable import ReliableLayer, ReliableParams
from repro.sim.engine import SimulationError


def rel_machine(n_nodes=4, params=None):
    m = Machine(MachineConfig(n_nodes=n_nodes))
    return m, ReliableLayer(m, params)


def run_sender(m, gen):
    m.processor(0).run_thread(gen)
    m.run()


class TestReliableLayer:
    def test_basic_delivery_and_ack(self):
        m, layer = rel_machine()
        got = []

        def handler(msg):
            got.append((msg.src, msg.operands))
            yield Compute(1)

        layer.register_everywhere("app.msg", handler)

        def sender():
            yield from layer.send(0, 2, "app.msg", operands=(7, 8), wait_ack=True)

        run_sender(m, sender())
        assert got == [(0, (7, 8))]
        assert layer.stats.data_sent == 1
        assert layer.stats.acks_received == 1
        assert layer.stats.delivered == 1
        assert layer.stats.retransmits == 0
        assert layer.pending_count() == 0

    def test_duplicate_registration_rejected(self):
        m, layer = rel_machine()
        layer.register_handler(0, "app.msg", lambda msg: iter(()))
        with pytest.raises(SimulationError):
            layer.register_handler(0, "app.msg", lambda msg: iter(()))

    def test_unknown_mtype_raises(self):
        m, layer = rel_machine()

        def sender():
            yield from layer.send(0, 1, "no.such.handler")

        with pytest.raises(SimulationError, match="no reliable handler"):
            run_sender(m, sender())

    def test_retransmit_after_drop(self):
        m, layer = rel_machine()
        got = []

        def handler(msg):
            got.append(msg.operands)
            yield Compute(1)

        layer.register_everywhere("app.msg", handler)
        # drop everything for a while, then heal the fabric:
        # retransmission must get the message (and its ack) through
        inj = FaultInjector(
            m, FaultPlan(link_rates={(0, 1): FaultRates(drop=1.0)}, seed=1)
        )
        m.sim.schedule(1500, inj.detach)

        def sender():
            yield from layer.send(0, 1, "app.msg", operands=(9,), wait_ack=True)

        run_sender(m, sender())
        assert got == [(9,)]
        assert layer.stats.retransmits >= 1
        assert layer.pending_count() == 0

    def test_exactly_once_under_duplicates(self):
        m, layer = rel_machine()
        got = []

        def handler(msg):
            got.append(msg.operands[0])
            yield Compute(1)

        layer.register_everywhere("app.msg", handler)
        FaultInjector(m, FaultPlan(rates=FaultRates(duplicate=0.6), seed=3))

        def sender():
            for i in range(20):
                yield from layer.send(0, 1, "app.msg", operands=(i,))
                yield Compute(30)

        run_sender(m, sender())
        assert m.network.stats.duplicated > 0
        assert sorted(got) == list(range(20))  # exactly once each
        assert layer.stats.duplicates_dropped > 0
        # duplicated acks for the duplicated data arrive at a sender
        # with no pending entry left
        assert layer.stats.stale_acks > 0

    def test_unordered_but_complete_under_reorder(self):
        m, layer = rel_machine()
        got = []

        def handler(msg):
            got.append(msg.operands[0])
            yield Compute(1)

        layer.register_everywhere("app.msg", handler)
        FaultInjector(
            m,
            FaultPlan(rates=FaultRates(reorder=0.4), reorder_range=(40, 60), seed=3),
        )

        def sender():
            for i in range(30):
                yield from layer.send(0, 1, "app.msg", operands=(i,))
                yield Compute(25)

        run_sender(m, sender())
        assert sorted(got) == list(range(30))
        assert got != sorted(got)  # delivery really was out of order

    def test_gives_up_on_dead_link(self):
        m, layer = rel_machine(params=ReliableParams(max_retries=2))
        layer.register_everywhere("app.msg", lambda msg: iter(()))
        FaultInjector(m, lossy_plan(1.0, seed=1))

        def sender():
            yield from layer.send(0, 1, "app.msg", wait_ack=True)

        with pytest.raises(SimulationError, match="gave up"):
            run_sender(m, sender())
        assert layer.stats.retransmits == 2

    def test_retries_cost_simulated_cycles(self):
        def run(drop, seed=6):
            m, layer = rel_machine()
            layer.register_everywhere("app.msg", lambda msg: iter(()))
            FaultInjector(m, lossy_plan(drop, seed=seed))

            def sender():
                for i in range(10):
                    yield from layer.send(0, 1, "app.msg", operands=(i,), wait_ack=True)

            run_sender(m, sender())
            return m.sim.now, layer.stats.retransmits

        clean_cycles, clean_retx = run(0.0)
        lossy_cycles, lossy_retx = run(0.05)
        assert clean_retx == 0
        assert lossy_retx > 0
        # each retry waits out a >=400-cycle timeout on the clock
        assert lossy_cycles >= clean_cycles + 400 * lossy_retx


class TestReliableBulk:
    def run_copy(self, drop, nbytes=1024, seed=6):
        m = Machine(MachineConfig(n_nodes=4))
        layer = ReliableLayer(m)
        bulk = BulkTransfer(m, reliable=layer)
        FaultInjector(m, lossy_plan(drop, seed=seed))
        src = m.alloc(0, nbytes)
        dst = m.alloc(1, nbytes)
        for i in range(nbytes // 8):
            m.store.write(src + i * 8, i)
        done = []

        def sender():
            for _ in range(4):
                yield from bulk.send(1, src, dst, nbytes, wait_ack=True, src_node=0)
            done.append(m.sim.now)

        run_sender(m, sender())
        assert done, "bulk sender never completed"
        data_ok = all(
            m.store.read(dst + i * 8) == i for i in range(nbytes // 8)
        )
        return done[0], data_ok, layer, m

    def test_lossless_copy(self):
        cycles, ok, layer, _ = self.run_copy(0.0)
        assert ok
        assert layer.stats.retransmits == 0

    def test_copy_survives_5pct_drop(self):
        clean, _, _, _ = self.run_copy(0.0)
        cycles, ok, layer, m = self.run_copy(0.05)
        assert ok
        assert m.network.stats.dropped > 0
        assert layer.stats.retransmits > 0
        assert cycles > clean  # retries charged on the simulated clock

    def test_src_node_required_in_reliable_mode(self):
        m = Machine(MachineConfig(n_nodes=4))
        layer = ReliableLayer(m)
        bulk = BulkTransfer(m, reliable=layer)
        src = m.alloc(0, 64)
        dst = m.alloc(1, 64)

        def sender():
            yield from bulk.send(1, src, dst, 64)

        with pytest.raises(SimulationError, match="src_node"):
            run_sender(m, sender())


class TestReliableBarrier:
    def run_barrier(self, drop, n_nodes=16, episodes=3, seed=6):
        m = Machine(MachineConfig(n_nodes=n_nodes))
        layer = ReliableLayer(m)
        barrier = MPTreeBarrier(m, fanout=8, reliable=layer)
        FaultInjector(m, lossy_plan(drop, seed=seed))
        finished = []

        def participant(node):
            for _ in range(episodes):
                yield from barrier.enter(node)
            finished.append(node)

        for node in range(n_nodes):
            m.processor(node).run_thread(participant(node))
        m.run()
        return finished, layer, m

    def test_lossless(self):
        finished, layer, _ = self.run_barrier(0.0)
        assert sorted(finished) == list(range(16))
        assert layer.stats.retransmits == 0

    def test_completes_under_5pct_drop(self):
        finished, layer, m = self.run_barrier(0.05)
        assert sorted(finished) == list(range(16))
        assert m.network.stats.dropped > 0
        assert layer.stats.retransmits > 0


class TestReliableRuntime:
    def test_hybrid_fork_join_under_loss(self):
        m = Machine(MachineConfig(n_nodes=8))
        layer = ReliableLayer(m)
        rt = Runtime(m, scheduler="hybrid", reliable=layer)
        FaultInjector(m, lossy_plan(0.10, seed=1))

        def tree(rt, node, depth):
            if depth == 0:
                yield Compute(50)
                return 1
            fut = yield from rt.fork(node, lambda rt, nd: tree(rt, nd, depth - 1))
            right = yield from tree(rt, node, depth - 1)
            left = yield from rt.join(node, fut)
            return left + right

        result, cycles = rt.run_to_completion(0, lambda rt, nd: tree(rt, nd, 5))
        assert result == 2**5
        assert m.network.stats.dropped > 0  # loss actually happened

    def test_reliable_spawn_to_needs_src(self):
        m = Machine(MachineConfig(n_nodes=4))
        layer = ReliableLayer(m)
        rt = Runtime(m, scheduler="hybrid", reliable=layer)

        def root(rt, node):
            yield from rt.spawn_to(2, lambda rt, nd: iter(()))

        with pytest.raises(SimulationError, match="src"):
            rt.run_to_completion(0, root)

    def test_reliable_spawn_to_with_src(self):
        m = Machine(MachineConfig(n_nodes=4))
        layer = ReliableLayer(m)
        rt = Runtime(m, scheduler="hybrid", reliable=layer)
        FaultInjector(m, lossy_plan(0.3, seed=2))

        def child(rt, node):
            yield Compute(10)
            return node * 10

        def root(rt, node):
            fut = yield from rt.spawn_to(2, child, src=node)
            value = yield from rt.join(node, fut)
            return value

        result, _ = rt.run_to_completion(0, root)
        assert result == 20
