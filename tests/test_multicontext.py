"""Tests for Sparcle fast context switching on cache misses."""

import pytest

from repro.machine import Machine, MachineConfig
from repro.params import ProcessorParams
from repro.proc import Compute, Load, Store


def machine(hw_contexts=2, n=4):
    return Machine(
        MachineConfig(
            n_nodes=n, processor=ProcessorParams(hw_contexts=hw_contexts)
        )
    )


def miss_heavy(m, base, count, stride=64):
    """A thread taking a remote miss per iteration (strided, no reuse)."""
    def gen():
        total = 0
        for i in range(count):
            v = yield Load(base + i * stride)
            total += v
            yield Compute(2)
        return total

    return gen()


class TestMissSwitching:
    def test_switches_happen_with_two_threads(self):
        m = machine(hw_contexts=2)
        base1 = m.alloc(1, 64 * 64)
        base2 = m.alloc(2, 64 * 64)
        m.processor(0).run_thread(miss_heavy(m, base1, 20))
        m.processor(0).run_thread(miss_heavy(m, base2, 20))
        m.run()
        assert m.processor(0).stats.miss_switches > 0

    def test_no_switches_with_one_context(self):
        m = machine(hw_contexts=1)
        base1 = m.alloc(1, 64 * 64)
        base2 = m.alloc(2, 64 * 64)
        m.processor(0).run_thread(miss_heavy(m, base1, 20))
        m.processor(0).run_thread(miss_heavy(m, base2, 20))
        m.run()
        assert m.processor(0).stats.miss_switches == 0

    def test_no_switch_without_other_work(self):
        m = machine(hw_contexts=4)
        base = m.alloc(1, 64 * 64)
        m.processor(0).run_thread(miss_heavy(m, base, 20))
        m.run()
        assert m.processor(0).stats.miss_switches == 0

    def test_multithreading_hides_latency(self):
        """Two miss-bound threads on one processor overlap their misses
        with 2 hardware contexts; with 1 they serialize."""
        times = {}
        for hw in (1, 2):
            m = machine(hw_contexts=hw)
            base1 = m.alloc(1, 64 * 64)
            base2 = m.alloc(2, 64 * 64)
            m.processor(0).run_thread(miss_heavy(m, base1, 30))
            m.processor(0).run_thread(miss_heavy(m, base2, 30))
            m.run()
            times[hw] = m.sim.now
        assert times[2] < times[1] * 0.8

    def test_results_identical_across_context_counts(self):
        sums = {}
        for hw in (1, 2, 4):
            m = machine(hw_contexts=hw)
            base1 = m.alloc(1, 64 * 64)
            base2 = m.alloc(2, 64 * 64)
            for i in range(30):
                m.store.write(base1 + i * 64, i)
                m.store.write(base2 + i * 64, i * 2)
            out = []
            m.processor(0).run_thread(miss_heavy(m, base1, 30), on_finish=out.append)
            m.processor(0).run_thread(miss_heavy(m, base2, 30), on_finish=out.append)
            m.run()
            sums[hw] = sorted(out)
        assert sums[1] == sums[2] == sums[4]

    def test_stalled_contexts_bounded_by_hw_contexts(self):
        m = machine(hw_contexts=2)
        bases = [m.alloc(node, 64 * 64) for node in range(1, 4)]
        for b in bases:
            m.processor(0).run_thread(miss_heavy(m, b, 15))
        max_stalled = []

        orig = m.processor(0)._maybe_miss_switch

        def watched(ctx):
            orig(ctx)
            max_stalled.append(len(m.processor(0)._stalled))

        m.processor(0)._maybe_miss_switch = watched
        m.run()
        assert max(max_stalled) <= 1  # hw_contexts - 1

    def test_param_validation(self):
        with pytest.raises(ValueError):
            ProcessorParams(hw_contexts=0)

    def test_stores_also_switch(self):
        m = machine(hw_contexts=2)
        dst1 = m.alloc(1, 64 * 64)
        dst2 = m.alloc(2, 64 * 64)

        def writer(base):
            for i in range(15):
                yield Store(base + i * 64, i)

        m.processor(0).run_thread(writer(dst1))
        m.processor(0).run_thread(writer(dst2))
        m.run()
        assert m.processor(0).stats.miss_switches > 0
        assert m.store.read(dst1 + 64) == 1
