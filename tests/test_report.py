"""Tests for the machine statistics report."""

from repro.analysis import collect
from repro.machine import Machine, MachineConfig
from repro.proc import Compute, Load, Send, Store


def test_report_counts_traffic():
    m = Machine(MachineConfig(n_nodes=4))
    addr = m.alloc(1, 8)

    def handler(msg):
        yield Compute(1)

    m.processor(2).register_handler("x", handler)

    def worker():
        yield Store(addr, 1)
        yield Load(addr)
        yield Send(2, "x", operands=(1,))

    m.processor(0).run_thread(worker())
    m.run()
    rep = collect(m)
    assert rep.cycles == m.sim.now
    assert rep.transactions >= 1
    assert rep.messages_sent == 1
    assert rep.interrupts == 1
    assert rep.software_packets >= 1
    assert rep.protocol_packets >= 2
    assert 0 <= rep.cache_hit_rate <= 1
    assert len(rep.per_node) == 4


def test_report_formats():
    m = Machine(MachineConfig(n_nodes=2))
    addr = m.alloc(1, 8)

    def worker():
        yield Store(addr, 5)

    m.processor(0).run_thread(worker())
    m.run()
    text = collect(m).format()
    assert "machine report" in text
    assert "cache hit rate" in text
    assert "LimitLESS traps" in text


def test_report_on_idle_machine():
    m = Machine(MachineConfig(n_nodes=2))
    rep = collect(m)
    assert rep.transactions == 0
    assert rep.cache_hit_rate == 0.0
