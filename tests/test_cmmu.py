"""Tests for the CMMU message interface and descriptor format."""

import pytest

from repro.cmmu.message import (
    MAX_DESCRIPTOR_WORDS,
    BlockRef,
    Message,
    descriptor_words,
    validate_descriptor,
)
from repro.machine import Machine, MachineConfig
from repro.params import CmmuParams
from repro.proc import Compute, Send


class TestDescriptor:
    def test_words_counts_operands_and_pairs(self):
        # header(2) + 3 operands + 2 words per address-length pair
        assert descriptor_words(3, 2) == 2 + 3 + 4

    def test_validate_within_limit(self):
        validate_descriptor(tuple(range(6)), [BlockRef(0x100, 64)] * 4)

    def test_validate_rejects_oversize(self):
        with pytest.raises(ValueError):
            validate_descriptor(tuple(range(15)), [])

    def test_max_is_sixteen_words(self):
        assert MAX_DESCRIPTOR_WORDS == 16  # paper §3

    def test_blockref_validation(self):
        with pytest.raises(ValueError):
            BlockRef(0x100, 0)
        with pytest.raises(ValueError):
            BlockRef(-8, 16)

    def test_message_data_words_rounds_up(self):
        msg = Message(src=0, dst=1, mtype="x", data_bytes=10)
        assert msg.data_words == 3

    def test_message_ids_unique(self):
        a = Message(src=0, dst=1, mtype="x")
        b = Message(src=0, dst=1, mtype="x")
        assert a.mid != b.mid


class TestCmmuCosts:
    def test_describe_cost_scales(self):
        p = CmmuParams()
        small = p.describe_cost(1, 0)
        big = p.describe_cost(8, 2)
        assert big > small

    def test_send_cost_visible_to_sender(self):
        """More operands -> the sender is occupied longer."""
        times = {}
        for n_ops in (1, 10):
            m = Machine(MachineConfig(n_nodes=2))

            def handler(msg):
                yield Compute(1)

            m.processor(1).register_handler("x", handler)
            box = []

            def sender(n=n_ops):
                t0 = m.sim.now
                yield Send(1, "x", operands=tuple(range(n)))
                box.append(m.sim.now - t0)

            m.processor(0).run_thread(sender())
            m.run()
            times[n_ops] = box[0]
        assert times[10] > times[1]

    def test_interrupt_stats_counted(self):
        m = Machine(MachineConfig(n_nodes=2))

        def handler(msg):
            yield Compute(1)

        m.processor(1).register_handler("x", handler)

        def sender():
            for _ in range(3):
                yield Send(1, "x")

        m.processor(0).run_thread(sender())
        m.run()
        assert m.nodes[1].cmmu.stats.interrupts_raised == 3
        assert m.nodes[1].cmmu.stats.messages_received == 3
        assert m.nodes[0].cmmu.stats.messages_sent == 3

    def test_dma_transfer_counted(self):
        m = Machine(MachineConfig(n_nodes=2))
        src = m.alloc(0, 128)
        dst = m.alloc(1, 128)

        def handler(msg):
            from repro.proc import Storeback

            yield Storeback(msg.operands[0])

        m.processor(1).register_handler("bulk", handler)

        def sender():
            yield Send(1, "bulk", operands=(dst,), blocks=[BlockRef(src, 128)])

        m.processor(0).run_thread(sender())
        m.run()
        assert m.nodes[0].cmmu.stats.dma_transfers == 1
        assert m.nodes[0].cmmu.stats.data_words_sent == 32

    def test_back_to_back_dma_serializes_on_engine(self):
        """Two large sends from one node share the source DMA engine."""
        m = Machine(MachineConfig(n_nodes=2))
        src = m.alloc(0, 4096)
        dst1 = m.alloc(1, 4096)
        dst2 = m.alloc(1, 4096)
        arrivals = []

        def handler(msg):
            from repro.proc import Storeback

            yield Storeback(msg.operands[0])
            arrivals.append(m.sim.now)

        m.processor(1).register_handler("bulk", handler)

        def sender():
            yield Send(1, "bulk", operands=(dst1,), blocks=[BlockRef(src, 4096)])
            yield Send(1, "bulk", operands=(dst2,), blocks=[BlockRef(src, 4096)])

        m.processor(0).run_thread(sender())
        m.run()
        assert len(arrivals) == 2
        stream = 1024 * m.config.cmmu.dma_cycles_per_word
        assert arrivals[1] - arrivals[0] >= stream * 0.9
