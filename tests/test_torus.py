"""Tests for the torus topology option."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import Machine, MachineConfig
from repro.network.topology import Mesh2D, Torus2D
from repro.params import NetworkParams
from repro.proc import Load


class TestTorus2D:
    def test_wraparound_hops(self):
        t = Torus2D(64)  # 8x8
        assert t.hops(0, 7) == 1     # wrap in x
        assert t.hops(0, 56) == 1    # wrap in y
        assert t.hops(0, 63) == 2    # wrap both
        assert t.hops(0, 36) == 8    # middle: no gain (4+4)

    def test_route_length_matches_hops(self):
        t = Torus2D(64)
        for src, dst in [(0, 63), (5, 58), (0, 36), (7, 0), (9, 9)]:
            assert len(t.route(src, dst)) == t.hops(src, dst)

    def test_route_links_adjacent_on_torus(self):
        t = Torus2D(16)
        for src, dst in [(0, 15), (3, 12), (1, 14)]:
            for a, b in t.route(src, dst):
                assert t.hops(a, b) == 1

    def test_diameter_nearly_halved_vs_mesh(self):
        mesh, torus = Mesh2D(64), Torus2D(64)
        mesh_diam = max(
            mesh.hops(s, d) for s in range(64) for d in range(64)
        )
        torus_diam = max(
            torus.hops(s, d) for s in range(64) for d in range(64)
        )
        assert mesh_diam == 14  # (8-1)*2
        assert torus_diam == 8  # 2*(8//2)

    def test_always_four_neighbors(self):
        t = Torus2D(16)
        for node in range(16):
            assert len(t.neighbors(node)) == 4

    @given(st.integers(0, 63), st.integers(0, 63))
    @settings(max_examples=50)
    def test_torus_never_longer_than_mesh(self, src, dst):
        mesh, torus = Mesh2D(64), Torus2D(64)
        assert torus.hops(src, dst) <= mesh.hops(src, dst)

    @given(st.integers(0, 63), st.integers(0, 63))
    @settings(max_examples=50)
    def test_route_connects_endpoints(self, src, dst):
        t = Torus2D(64)
        route = t.route(src, dst)
        if src == dst:
            assert route == []
        else:
            assert route[0][0] == src and route[-1][1] == dst


class TestTorusMachine:
    def test_config_selects_topology(self):
        m = Machine(MachineConfig(n_nodes=16, network=NetworkParams(topology="torus")))
        assert isinstance(m.mesh, Torus2D)

    def test_bad_topology_rejected(self):
        with pytest.raises(ValueError):
            NetworkParams(topology="hypercube")

    def test_corner_to_corner_faster_on_torus(self):
        def corner_read_latency(topology):
            m = Machine(
                MachineConfig(n_nodes=64, network=NetworkParams(topology=topology))
            )
            addr = m.alloc(63, 8)
            box = []

            def t():
                yield Load(addr)
                box.append(m.sim.now)

            m.processor(0).run_thread(t())
            m.run()
            return box[0]

        assert corner_read_latency("torus") < corner_read_latency("mesh")
