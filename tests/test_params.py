"""Tests for configuration validation and unit helpers."""

import pytest

from repro.params import CmmuParams, MachineConfig, NetworkParams


class TestMachineConfig:
    def test_defaults_are_paper_values(self):
        cfg = MachineConfig()
        assert cfg.n_nodes == 64
        assert cfg.clock_mhz == 33.0
        assert cfg.line_size == 16
        assert cfg.cmmu.interrupt_entry == 5  # paper §3
        assert cfg.cmmu.window_words == 16    # paper §3

    def test_bad_n_nodes(self):
        with pytest.raises(ValueError):
            MachineConfig(n_nodes=0)

    def test_bad_line_size(self):
        with pytest.raises(ValueError):
            MachineConfig(line_size=24)

    def test_bad_cache_lines(self):
        with pytest.raises(ValueError):
            MachineConfig(cache_lines=0)

    def test_bad_clock(self):
        with pytest.raises(ValueError):
            MachineConfig(clock_mhz=0)

    def test_cycles_to_usec(self):
        cfg = MachineConfig()
        assert cfg.cycles_to_usec(33) == pytest.approx(1.0)
        assert cfg.cycles_to_msec(33_000) == pytest.approx(1.0)

    def test_mbytes_per_sec(self):
        cfg = MachineConfig()
        assert cfg.mbytes_per_sec(4096, 2440) == pytest.approx(55.4, rel=0.01)

    def test_mbytes_rejects_zero_cycles(self):
        with pytest.raises(ValueError):
            MachineConfig().mbytes_per_sec(100, 0)


class TestCmmuParams:
    def test_describe_cost_formula(self):
        p = CmmuParams(describe_base=2, describe_per_operand=1, describe_per_block=2)
        assert p.describe_cost(3, 2) == 2 + 3 + 4


class TestNetworkParams:
    def test_defaults(self):
        p = NetworkParams()
        assert p.hop_latency > 0
        assert p.bandwidth_bytes_per_cycle > 0
