"""Macro-effect equivalence guards.

The batched effects (``ComputeLoad``, ``LoadComputeStore``,
``StoreRun``, ``Repeat``, ``SpinUntilGE``) exist purely to cut host
overhead: one generator resume per *loop* instead of per element. The
contract is cycle identity — a macro batch and its documented micro
equivalent must produce the same simulated time, the same values, the
same stats, the same trace stream, the same profiler attribution, and
the same checker findings. These tests pin that contract, including a
hypothesis sweep that forces coherence misses (batch splits) at random
elements via a concurrent writer.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import Machine, MachineConfig
from repro.proc import (
    Compute,
    ComputeLoad,
    Load,
    LoadAcquire,
    LoadComputeStore,
    Prefetch,
    Repeat,
    SpinUntilGE,
    Store,
    StoreRelease,
    StoreRun,
    Suspend,
)


def machine(n=4, **kw):
    return Machine(MachineConfig(n_nodes=n, **kw))


# ----------------------------------------------------------------------
# Micro equivalents (the documented per-element programs)
# ----------------------------------------------------------------------
def micro_compute_load(base, count, stride=8, compute=0, prefetch_line=0):
    values = []
    per_line = prefetch_line // stride if prefetch_line else 0

    def gen():
        for i in range(count):
            if per_line and i % per_line == 0 and (i + per_line) < count:
                yield Prefetch(base + (i + per_line) * stride)
            v = yield Load(base + i * stride)
            values.append(v)
            if compute:
                yield Compute(compute)
        return values

    return gen()


def macro_compute_load(base, count, stride=8, compute=0, prefetch_line=0):
    def gen():
        values = yield ComputeLoad(
            base, count, stride=stride, compute=compute,
            prefetch_line=prefetch_line,
        )
        return values

    return gen()


def micro_copy(src, dst, count, stride=8, compute=0, prefetch_line=0):
    def gen():
        nbytes = count * stride
        for off in range(0, nbytes, stride):
            if prefetch_line and off % prefetch_line == 0 \
                    and off + prefetch_line < nbytes:
                yield Prefetch(src + off + prefetch_line)
                yield Prefetch(dst + off + prefetch_line)
            v = yield Load(src + off)
            yield Store(dst + off, v)
            if compute:
                yield Compute(compute)

    return gen()


def macro_copy(src, dst, count, stride=8, compute=0, prefetch_line=0):
    def gen():
        yield LoadComputeStore(
            src, dst, count, stride=stride, compute=compute,
            prefetch_line=prefetch_line,
        )

    return gen()


def micro_spin(addr, threshold, backoff=0):
    def gen():
        while True:
            v = yield LoadAcquire(addr)
            if v >= threshold:
                return v
            if backoff:
                yield Compute(backoff)

    return gen()


def macro_spin(addr, threshold, backoff=0):
    def gen():
        v = yield SpinUntilGE(addr, threshold, backoff=backoff)
        return v

    return gen()


def run_pair(build_threads, n=4, observe=None):
    """Run ``build_threads(machine, variant)`` for both variants and
    return the two (machine, results, extras) triples.

    ``observe`` (optional) is called with the machine before the run and
    its return value lands in extras (tracer/profiler/checker handles).
    """
    out = []
    for variant in ("micro", "macro"):
        m = machine(n=n)
        extra = observe(m) if observe is not None else None
        results = build_threads(m, variant)
        m.run()
        out.append((m, results, extra))
    return out


# ----------------------------------------------------------------------
# Golden identity per macro effect
# ----------------------------------------------------------------------
class TestMacroMicroIdentity:
    def test_compute_load_identical(self):
        count, stride = 24, 64  # strided: every element misses

        def build(m, variant):
            base = m.alloc(1, count * stride)
            for i in range(count):
                m.store.write(base + i * stride, i * 3)
            fn = micro_compute_load if variant == "micro" else macro_compute_load
            out = []
            m.processor(0).run_thread(
                fn(base, count, stride=stride, compute=2),
                on_finish=out.append, label="reader",
            )
            return out

        (m1, r1, _), (m2, r2, _) = run_pair(build)
        assert m1.sim.now == m2.sim.now
        assert r1 == r2 == [[i * 3 for i in range(count)]]
        c1, c2 = m1.coherence.caches[0].stats, m2.coherence.caches[0].stats
        assert (c1.hits, c1.misses, c1.upgrades) == (c2.hits, c2.misses, c2.upgrades)
        assert m1.processor(0).stats.effects == m2.processor(0).stats.effects

    def test_compute_load_with_prefetch_identical(self):
        count, stride, line = 16, 8, 64

        def build(m, variant):
            base = m.alloc(1, count * stride)
            fn = micro_compute_load if variant == "micro" else macro_compute_load
            out = []
            m.processor(0).run_thread(
                fn(base, count, stride=stride, compute=1, prefetch_line=line),
                on_finish=out.append,
            )
            return out

        (m1, r1, _), (m2, r2, _) = run_pair(build)
        assert m1.sim.now == m2.sim.now
        assert r1 == r2
        s1, s2 = m1.coherence.stats, m2.coherence.stats
        assert s1.prefetches_issued == s2.prefetches_issued > 0

    def test_copy_identical(self):
        count, stride = 32, 8

        def build(m, variant):
            src = m.alloc(1, count * stride)
            dst = m.alloc(2, count * stride)
            for i in range(count):
                m.store.write(src + i * stride, 100 + i)
            fn = micro_copy if variant == "micro" else macro_copy
            m.processor(0).run_thread(
                fn(src, dst, count, stride=stride, prefetch_line=64)
            )
            return [m.store.read(dst + i * stride) for i in range(count)], dst

        (m1, (pre1, dst1), _), (m2, (pre2, dst2), _) = run_pair(build)
        assert m1.sim.now == m2.sim.now
        got1 = [m1.store.read(dst1 + i * stride) for i in range(count)]
        got2 = [m2.store.read(dst2 + i * stride) for i in range(count)]
        assert got1 == got2 == [100 + i for i in range(count)]

    def test_store_run_identical(self):
        vals = [7, 11, 13, 17, 19]

        def build(m, variant):
            base = m.alloc(1, len(vals) * 8)
            if variant == "micro":
                def gen():
                    for i, v in enumerate(vals):
                        yield Store(base + i * 8, v)
            else:
                def gen():
                    yield StoreRun(base, vals)
            m.processor(0).run_thread(gen())
            return base

        (m1, b1, _), (m2, b2, _) = run_pair(build)
        assert m1.sim.now == m2.sim.now
        assert [m1.store.read(b1 + i * 8) for i in range(len(vals))] == vals
        assert [m2.store.read(b2 + i * 8) for i in range(len(vals))] == vals

    def test_repeat_identical(self):
        reps = 10

        def build(m, variant):
            a = m.alloc(1, 8)
            b = m.alloc(0, 8)
            body = (Compute(3), Load(a), Store(b, 1), Compute(1))
            if variant == "micro":
                def gen():
                    for _ in range(reps):
                        yield Compute(3)
                        yield Load(a)
                        yield Store(b, 1)
                        yield Compute(1)
            else:
                def gen():
                    yield Repeat(reps, body)
            m.processor(0).run_thread(gen())
            return None

        (m1, _, _), (m2, _, _) = run_pair(build)
        assert m1.sim.now == m2.sim.now
        assert m1.processor(0).stats.effects == m2.processor(0).stats.effects

    def test_spin_identical(self):
        def build(m, variant):
            flag = m.alloc(1, 8)
            fn = micro_spin if variant == "micro" else macro_spin
            out = []
            m.processor(0).run_thread(
                fn(flag, 1, backoff=6), on_finish=out.append, label="spinner"
            )

            def releaser():
                yield Compute(400)
                yield StoreRelease(flag, 1)

            m.processor(1).run_thread(releaser(), label="releaser")
            return out

        (m1, r1, _), (m2, r2, _) = run_pair(build)
        assert m1.sim.now == m2.sim.now
        assert r1 == r2 == [1]
        assert m1.processor(0).stats.effects == m2.processor(0).stats.effects


# ----------------------------------------------------------------------
# Observer identity: the batch runner must be invisible to tracer,
# profiler, and checkers — they see the per-element micro stream.
# ----------------------------------------------------------------------
class TestObserverIdentity:
    def _racy_build(self, m, variant):
        # unsynchronized concurrent writer: forces invalidations that
        # split the batch at arbitrary elements AND races with it
        count, stride = 16, 8
        base = m.alloc(1, count * stride)
        fn = micro_compute_load if variant == "micro" else macro_compute_load
        m.processor(0).run_thread(
            fn(base, count, stride=stride, compute=2), label="reader"
        )

        def writer():
            for i in range(0, count, 4):
                yield Compute(50)
                yield Store(base + i * stride, 999)

        m.processor(1).run_thread(writer(), label="writer")
        return base

    def test_trace_stream_identical(self):
        from repro.trace.tracer import Tracer

        def observe(m):
            return Tracer(m, kinds=("effect", "txn", "packet"))

        (m1, _, t1), (m2, _, t2) = run_pair(self._racy_build, observe=observe)
        ev1 = [(e.time, e.node, e.kind, e.what, e.detail) for e in t1.events]
        ev2 = [(e.time, e.node, e.kind, e.what, e.detail) for e in t2.events]
        assert ev1 == ev2
        # the macro wrapper itself must NOT appear as an effect
        assert not any("ComputeLoad" in e.what for e in t2.events)
        assert any(e.what == "Load" for e in t2.events)

    def test_profiler_buckets_identical(self):
        from repro.obs.profiler import CycleProfiler

        (m1, _, p1), (m2, _, p2) = run_pair(
            self._racy_build, observe=CycleProfiler
        )
        assert p1.per_node() == p2.per_node()
        assert p1.totals() == p2.totals()

    def test_race_detector_equivalent(self):
        from repro.check import CheckerSet

        def observe(m):
            return CheckerSet(m, checks=("race",))

        (m1, _, c1), (m2, _, c2) = run_pair(self._racy_build, observe=observe)
        f1 = {(f.kind, f.addr) for f in c1.finalize().findings}
        f2 = {(f.kind, f.addr) for f in c2.finalize().findings}
        assert f1 == f2
        assert f2  # the program really does race


# ----------------------------------------------------------------------
# stats.effects counts elements, not batches
# ----------------------------------------------------------------------
class TestEffectAccounting:
    def test_effects_counts_elements(self):
        count = 12
        m = machine()
        base = m.alloc(1, count * 8)
        m.processor(0).run_thread(macro_compute_load(base, count, compute=2))
        m.run()
        # count loads + count computes, regardless of batching
        assert m.processor(0).stats.effects == 2 * count

    def test_zero_count_batch_is_free(self):
        m = machine()
        base = m.alloc(1, 64)
        out = []
        m.processor(0).run_thread(
            macro_compute_load(base, 0), on_finish=out.append
        )
        m.run()
        assert out == [[]]
        assert m.processor(0).stats.effects == 0


# ----------------------------------------------------------------------
# Hypothesis: random batch shapes with a concurrent writer forcing
# miss splits at arbitrary elements — macro == micro, always.
# ----------------------------------------------------------------------
@settings(max_examples=20, deadline=None)
@given(
    count=st.integers(min_value=0, max_value=12),
    stride=st.sampled_from([8, 16, 64]),
    compute=st.integers(min_value=0, max_value=4),
    writer_step=st.integers(min_value=1, max_value=5),
    writer_delay=st.integers(min_value=0, max_value=120),
)
def test_random_batches_with_invalidating_writer(
    count, stride, compute, writer_step, writer_delay
):
    results = []
    for variant in ("micro", "macro"):
        m = machine()
        base = m.alloc(1, max(count, 1) * stride)
        for i in range(count):
            m.store.write(base + i * stride, i + 1)
        fn = micro_compute_load if variant == "micro" else macro_compute_load
        out = []
        m.processor(0).run_thread(
            fn(base, count, stride=stride, compute=compute),
            on_finish=out.append, label="reader",
        )

        def writer():
            if writer_delay:
                yield Compute(writer_delay)
            for i in range(0, count, writer_step):
                yield Store(base + i * stride, 1000 + i)
                yield Compute(7)

        m.processor(1).run_thread(writer(), label="writer")
        m.run()
        c = m.coherence.caches[0].stats
        results.append(
            (m.sim.now, out, c.hits, c.misses, c.upgrades,
             m.processor(0).stats.effects)
        )
    assert results[0] == results[1]


# ----------------------------------------------------------------------
# Validation and semantics
# ----------------------------------------------------------------------
class TestValidation:
    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="negative batch count"):
            ComputeLoad(0, -1)

    def test_zero_stride_rejected(self):
        with pytest.raises(ValueError, match="stride must be positive"):
            LoadComputeStore(0, 64, 4, stride=0)

    def test_misaligned_prefetch_line_rejected(self):
        with pytest.raises(ValueError, match="not a multiple of stride"):
            ComputeLoad(0, 4, stride=24, prefetch_line=64)

    def test_store_run_stride_rejected(self):
        with pytest.raises(ValueError, match="stride must be positive"):
            StoreRun(0, [1], stride=0)

    def test_repeat_rejects_non_repeatable_body(self):
        with pytest.raises(ValueError, match="Repeat body may not contain"):
            Repeat(3, (Compute(1), Suspend(register=0)))

    def test_repeat_rejects_negative_count(self):
        with pytest.raises(ValueError, match="negative repeat count"):
            Repeat(-1, (Compute(1),))

    def test_negative_backoff_rejected(self):
        with pytest.raises(ValueError, match="negative spin backoff"):
            SpinUntilGE(0, 1, backoff=-1)

    def test_spin_resumes_with_observed_value(self):
        m = machine()
        flag = m.alloc(1, 8)
        m.store.write(flag, 5)  # already past threshold
        out = []
        m.processor(0).run_thread(macro_spin(flag, 3), on_finish=out.append)
        m.run()
        assert out == [5]
