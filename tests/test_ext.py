"""Tests for the §6 future-work extensions: channels and shared objects."""

import pytest

from repro.ext import Channel, ObjectSpace
from repro.machine import Machine, MachineConfig
from repro.proc import Compute


def machine(n=4):
    return Machine(MachineConfig(n_nodes=n))


def run_pair(m, producer_gen, consumer_gen, producer=0, consumer=1):
    out = {}
    m.processor(producer).run_thread(producer_gen, on_finish=lambda v: out.setdefault("p", v))
    m.processor(consumer).run_thread(consumer_gen, on_finish=lambda v: out.setdefault("c", v))
    m.run(max_events=5_000_000)
    return out


class TestChannel:
    @pytest.mark.parametrize("mechanism", ["sm", "mp"])
    def test_fifo_order(self, mechanism):
        m = machine()
        chan = Channel(m, producer=0, consumer=1, mechanism=mechanism)

        def producer():
            for i in range(20):
                yield from chan.put(i * 3)
                yield Compute(5)

        def consumer():
            got = []
            for _ in range(20):
                v = yield from chan.get()
                got.append(v)
            return got

        out = run_pair(m, producer(), consumer())
        assert out["c"] == [i * 3 for i in range(20)]

    @pytest.mark.parametrize("mechanism", ["sm", "mp"])
    def test_wraps_capacity(self, mechanism):
        m = machine()
        chan = Channel(m, producer=0, consumer=1, mechanism=mechanism, capacity=4)

        def producer():
            for i in range(17):  # > 4 laps
                yield from chan.put(i)

        def consumer():
            got = []
            for _ in range(17):
                got.append((yield from chan.get()))
            return got

        out = run_pair(m, producer(), consumer())
        assert out["c"] == list(range(17))

    @pytest.mark.parametrize("mechanism", ["sm", "mp"])
    def test_consumer_blocks_until_put(self, mechanism):
        m = machine()
        chan = Channel(m, producer=0, consumer=1, mechanism=mechanism)
        times = {}

        def producer():
            yield Compute(2000)
            yield from chan.put("late")

        def consumer():
            v = yield from chan.get()
            times["got_at"] = m.sim.now
            return v

        out = run_pair(m, producer(), consumer())
        assert out["c"] == "late"
        assert times["got_at"] >= 2000

    def test_sm_producer_blocks_when_full(self):
        m = machine()
        chan = Channel(m, producer=0, consumer=1, mechanism="sm", capacity=2)
        prod_done = []

        def producer():
            for i in range(4):
                yield from chan.put(i)
            prod_done.append(m.sim.now)

        def consumer():
            yield Compute(5000)  # consume late
            got = []
            for _ in range(4):
                got.append((yield from chan.get()))
            return got

        out = run_pair(m, producer(), consumer())
        assert out["c"] == [0, 1, 2, 3]
        assert prod_done[0] > 5000  # producer had to wait for drains

    def test_mp_put_is_cheap_for_producer(self):
        m = machine()
        chan_mp = Channel(m, producer=0, consumer=1, mechanism="mp")
        cost = []

        def producer():
            t0 = m.sim.now
            yield from chan_mp.put(1)
            cost.append(m.sim.now - t0)

        def consumer():
            return (yield from chan_mp.get())

        run_pair(m, producer(), consumer())
        assert cost[0] < 20  # describe+launch only

    def test_validation(self):
        with pytest.raises(ValueError):
            Channel(machine(), 0, 1, mechanism="bogus")
        with pytest.raises(ValueError):
            Channel(machine(), 0, 1, capacity=0)


def make_counter_space(m):
    space = ObjectSpace(m)
    obj = space.create(
        home=0,
        fields={"count": 0, "total": 0},
        methods={
            "add": lambda f, x: (f["count"] + 1, {"count": f["count"] + 1, "total": f["total"] + x}),
            "read": lambda f: ((f["count"], f["total"]), {}),
        },
    )
    return space, obj


class TestSharedObject:
    @pytest.mark.parametrize("policy", ["data", "compute"])
    def test_method_updates_fields(self, policy):
        m = machine()
        _space, obj = make_counter_space(m)

        def caller():
            yield from obj.invoke(2, "add", (10,), policy=policy)
            yield from obj.invoke(2, "add", (5,), policy=policy)
            result = yield from obj.invoke(2, "read", policy=policy)
            return result

        out = {}
        m.processor(2).run_thread(caller(), on_finish=lambda v: out.setdefault("r", v))
        m.run()
        assert out["r"] == (2, 15)
        assert obj.read_field("count") == 2
        assert obj.read_field("total") == 15

    @pytest.mark.parametrize("policy", ["data", "compute"])
    def test_concurrent_adders_consistent(self, policy):
        m = machine()
        _space, obj = make_counter_space(m)

        def adder(node, times):
            for _ in range(times):
                yield from obj.invoke(node, "add", (1,), policy=policy)
                yield Compute(7)

        for node in range(4):
            m.processor(node).run_thread(adder(node, 5))
        m.run(max_events=5_000_000)
        assert obj.read_field("count") == 20
        assert obj.read_field("total") == 20

    def test_mixed_policies_stay_consistent(self):
        m = machine()
        _space, obj = make_counter_space(m)

        def adder(node, policy):
            for _ in range(6):
                yield from obj.invoke(node, "add", (1,), policy=policy)

        m.processor(1).run_thread(adder(1, "data"))
        m.processor(2).run_thread(adder(2, "compute"))
        m.run(max_events=5_000_000)
        assert obj.read_field("count") == 12

    def test_compute_policy_from_home_is_local(self):
        m = machine()
        _space, obj = make_counter_space(m)
        out = {}

        def caller():
            v = yield from obj.invoke(0, "add", (1,), policy="compute")
            return v

        m.processor(0).run_thread(caller(), on_finish=lambda v: out.setdefault("r", v))
        m.run()
        assert out["r"] == 1

    def test_write_hot_prefers_compute_policy(self):
        """The §6 claim quantified: a write-hot object accessed by many
        nodes is faster under move-the-computation."""
        cycles = {}
        for policy in ("data", "compute"):
            m = machine(8)
            _space, obj = make_counter_space(m)

            def adder(node):
                for _ in range(8):
                    yield from obj.invoke(node, "add", (1,), policy=policy)

            for node in range(1, 8):
                m.processor(node).run_thread(adder(node))
            m.run(max_events=10_000_000)
            assert obj.read_field("count") == 56
            cycles[policy] = m.sim.now
        assert cycles["compute"] < cycles["data"]

    def test_unknown_method(self):
        m = machine()
        _space, obj = make_counter_space(m)
        with pytest.raises(KeyError):
            list(obj.invoke(1, "nope"))

    def test_bad_policy(self):
        m = machine()
        _space, obj = make_counter_space(m)
        with pytest.raises(ValueError):
            list(obj.invoke(1, "read", policy="bogus"))

    def test_method_updating_unknown_field_rejected(self):
        m = machine()
        space = ObjectSpace(m)
        obj = space.create(0, {"a": 1}, {"bad": lambda f: (None, {"zzz": 9})})
        out = {}

        def caller():
            yield from obj.invoke(1, "bad", policy="data")

        m.processor(1).run_thread(caller())
        with pytest.raises(KeyError):
            m.run()
