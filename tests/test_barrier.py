"""Tests for the SM and MP combining-tree barriers."""

import pytest

from repro.machine import Machine, MachineConfig
from repro.proc import Compute
from repro.runtime import MPTreeBarrier, SMTreeBarrier


def machine(n):
    return Machine(MachineConfig(n_nodes=n))


def run_barrier_episodes(m, barrier, episodes=1, skews=None):
    """All nodes enter the barrier ``episodes`` times; returns for each
    node the list of cycle times at which it left each episode."""
    n = m.n_nodes
    skews = skews or [0] * n
    leave_times = {node: [] for node in range(n)}

    def participant(node):
        yield Compute(skews[node])
        for _ in range(episodes):
            yield from barrier.enter(node)
            leave_times[node].append(m.sim.now)
            yield Compute(1 + node % 3)

    for node in range(n):
        m.processor(node).run_thread(participant(node))
    m.run()
    return leave_times


@pytest.mark.parametrize("make", [
    lambda m: SMTreeBarrier(m, arity=2),
    lambda m: MPTreeBarrier(m, fanout=8),
], ids=["sm", "mp"])
class TestBarrierSemantics:
    def test_all_nodes_released(self, make):
        m = machine(16)
        lt = run_barrier_episodes(m, make(m))
        assert all(len(v) == 1 for v in lt.values())

    def test_no_one_leaves_before_last_arrival(self, make):
        m = machine(16)
        # node 7 arrives very late; nobody may leave before it arrives
        skews = [0] * 16
        skews[7] = 5000
        lt = run_barrier_episodes(m, make(m), skews=skews)
        assert min(t[0] for t in lt.values()) >= 5000

    def test_multiple_episodes(self, make):
        m = machine(16)
        lt = run_barrier_episodes(m, make(m), episodes=4)
        for times in lt.values():
            assert len(times) == 4
            assert times == sorted(times)

    def test_episode_separation(self, make):
        """Episode k+1's release is after every node's episode-k release."""
        m = machine(8)
        lt = run_barrier_episodes(m, make(m), episodes=3)
        for ep in range(2):
            latest_this = max(t[ep] for t in lt.values())
            earliest_next = min(t[ep + 1] for t in lt.values())
            assert earliest_next > latest_this

    def test_works_on_two_nodes(self, make):
        m = machine(2)
        lt = run_barrier_episodes(m, make(m))
        assert all(len(v) == 1 for v in lt.values())

    def test_works_on_64_nodes(self, make):
        m = machine(64)
        lt = run_barrier_episodes(m, make(m))
        assert all(len(v) == 1 for v in lt.values())


class TestBarrierShapes:
    def test_sm_tree_depth_64(self):
        m = machine(64)
        b = SMTreeBarrier(m, arity=2)
        assert b.depth() == 6  # the paper's six-level binary tree

    def test_mp_tree_two_level_8ary(self):
        m = machine(64)
        b = MPTreeBarrier(m, fanout=8)
        assert len(b.leaders) == 8
        assert b.group_size == 8

    def test_mp_barrier_faster_than_sm_on_64(self):
        """§4.2: message barrier ≈2.5x faster than the best SM tree."""
        cycles = {}
        for name in ("sm", "mp"):
            m = machine(64)
            b = SMTreeBarrier(m, arity=2) if name == "sm" else MPTreeBarrier(m, fanout=8)
            lt = run_barrier_episodes(m, b, episodes=3)
            # steady-state episode time: last episode completion delta
            start = max(t[1] for t in lt.values())
            end = max(t[2] for t in lt.values())
            cycles[name] = end - start
        assert cycles["mp"] < cycles["sm"]

    def test_sm_barrier_arity_validation(self):
        with pytest.raises(ValueError):
            SMTreeBarrier(machine(4), arity=1)

    def test_mp_barrier_fanout_validation(self):
        with pytest.raises(ValueError):
            MPTreeBarrier(machine(4), fanout=1)
