"""Job journal tests (ISSUE 8): append/replay semantics and daemon
restart recovery.

The acceptance contract under test: a daemon killed with jobs queued
and running can be restarted on the same journal and (a) re-queues
every accepted-but-unstarted job in priority order, (b) marks the job
that was mid-run as interrupted, (c) keeps answering status for jobs
that already finished — and a job's full lifecycle is reconstructable
from the journal file alone, with no daemon running.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.serve.journal import (
    TERMINAL_EVENTS,
    JobJournal,
    default_journal_path,
    spec_hash,
)
from repro.serve.orchestrator import (
    DONE,
    FAILED,
    QUEUED,
    JobCancelled,
    JobOrchestrator,
)
from repro.serve.store import RunStore

POLL = 0.005


def _spin_until(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("condition never became true")
        time.sleep(POLL)


class FakeExecutor:
    """Deterministic executor that can hold jobs 'running' on a gate
    and reports fake sweep progress through the observer kwarg."""

    def __init__(self) -> None:
        self.executed: list[str] = []
        self.gates: dict[str, threading.Event] = {}
        self.started: dict[str, threading.Event] = {}
        self._lock = threading.Lock()

    def hold(self, name: str) -> threading.Event:
        self.gates[name] = threading.Event()
        self.started[name] = threading.Event()
        return self.gates[name]

    def key_for(self, spec: dict) -> str:
        return f"key-{spec['name']}"

    def execute(self, spec, should_cancel, progress=None, job_info=None):
        name = spec["name"]
        started = self.started.get(name)
        if started is not None:
            started.set()
        gate = self.gates.get(name)
        while gate is not None and not gate.is_set():
            if should_cancel():
                raise JobCancelled()
            time.sleep(POLL)
        if progress is not None:
            for done in (1, 2):
                progress({
                    "done": done, "total": 2, "cache_hits": 0,
                    "point": f"{name}[{done - 1}]",
                })
        with self._lock:
            self.executed.append(name)
        return {"experiment": name}, {"report.txt": f"out {name}\n".encode()}


# ----------------------------------------------------------------------
# Journal primitives
# ----------------------------------------------------------------------
class TestJournalPrimitives:
    def test_record_replay_roundtrip(self, tmp_path):
        journal = JobJournal(tmp_path / "j.jsonl")
        journal.record("submitted", job="a", key="k", priority=2)
        journal.record("started", job="a")
        journal.record("done", job="a")
        journal.close()
        events = list(JobJournal(journal.path).replay())
        assert [e["t"] for e in events] == ["submitted", "started", "done"]
        # both clocks stamped, monotonic nondecreasing within a process
        for event in events:
            assert event["wall"] > 0 and event["mono"] > 0
        monos = [e["mono"] for e in events]
        assert monos == sorted(monos)
        assert events[0]["priority"] == 2

    def test_torn_final_line_is_skipped_not_fatal(self, tmp_path):
        journal = JobJournal(tmp_path / "j.jsonl")
        journal.record("submitted", job="a", key="k")
        journal.close()
        with open(journal.path, "a") as fh:
            fh.write('{"t": "started", "job": "a", "wal')  # crash mid-write
        events = list(JobJournal(journal.path).replay())
        assert [e["t"] for e in events] == ["submitted"]

    def test_replay_of_missing_file_is_empty(self, tmp_path):
        assert list(JobJournal(tmp_path / "absent.jsonl").replay()) == []

    def test_spec_hash_stable_and_key_order_insensitive(self):
        a = spec_hash({"experiment": "fig8", "params": {"n": 1}})
        b = spec_hash({"params": {"n": 1}, "experiment": "fig8"})
        assert a == b and len(a) == 16
        assert a != spec_hash({"experiment": "fig8", "params": {"n": 2}})

    def test_reconstruct_folds_lifecycle(self, tmp_path):
        journal = JobJournal(tmp_path / "j.jsonl")
        journal.mark_daemon_start()  # markers must not confuse replay
        journal.record(
            "submitted", job="a", key="ka", spec={"name": "a"},
            priority=5, trace_id="a",
        )
        journal.record("submitted", job="b", key="kb", spec={"name": "b"},
                       priority=0, trace_id="b")
        journal.record("started", job="a")
        journal.record("progress", job="a", done=1, total=2, cache_hits=1,
                       point="a[0]")
        journal.record("done", job="a")
        journal.close()
        jobs = JobJournal(journal.path).reconstruct()
        assert list(jobs) == ["a", "b"]  # first-submission order
        assert jobs["a"]["state"] == "done"
        assert jobs["a"]["progress"] == {
            "done": 1, "total": 2, "cache_hits": 1, "point": "a[0]",
        }
        assert jobs["a"]["priority"] == 5
        assert jobs["a"]["finished_wall"] >= jobs["a"]["submitted_wall"]
        assert jobs["b"]["state"] == "queued"

    def test_reconstruct_marks_interrupted_as_failed(self, tmp_path):
        journal = JobJournal(tmp_path / "j.jsonl")
        journal.record("submitted", job="a", key="ka", spec={})
        journal.record("started", job="a")
        journal.record("interrupted", job="a", error="daemon restart")
        journal.close()
        rec = JobJournal(journal.path).reconstruct()["a"]
        assert rec["state"] == "failed"
        assert rec["interrupted"] is True
        assert "interrupted" in TERMINAL_EVENTS

    def test_default_journal_path_lives_with_the_store(self, tmp_path):
        assert default_journal_path(tmp_path) == tmp_path / "journal.jsonl"


# ----------------------------------------------------------------------
# Restart recovery through the orchestrator
# ----------------------------------------------------------------------
class TestRestartRecovery:
    def test_crash_requeues_queued_and_marks_running_interrupted(
        self, tmp_path
    ):
        path = tmp_path / "journal.jsonl"
        store = RunStore(tmp_path / "store")

        # daemon #1: one job running (held on a gate), two queued
        executor_a = FakeExecutor()
        gate = executor_a.hold("stuck")
        orch_a = JobOrchestrator(
            executor_a, store, workers=1, journal=JobJournal(path)
        )
        orch_a.start()
        stuck = orch_a.submit({"name": "stuck"})
        executor_a.started["stuck"].wait(5.0)
        low = orch_a.submit({"name": "low"}, priority=0)
        high = orch_a.submit({"name": "high"}, priority=5)
        assert orch_a.get(low.id).state == QUEUED

        # daemon #2 on the same journal — #1 is simply abandoned, as a
        # kill -9 would leave it (no terminal events were journaled)
        executor_b = FakeExecutor()
        orch_b = JobOrchestrator(
            executor_b, store, workers=1, journal=JobJournal(path)
        )
        counts = orch_b.recover()
        assert counts == {"requeued": 2, "interrupted": 1, "terminal": 0}
        assert orch_b.counters["recovered"] == 2
        assert orch_b.counters["interrupted"] == 1

        # the mid-run job is honestly failed, spec preserved for retry
        revived = orch_b.get(stuck.id)
        assert revived.state == FAILED
        assert "interrupted" in revived.error
        assert revived.recovered is True
        assert revived.spec == {"name": "stuck"}

        # queued jobs survived with their priorities: high runs first
        assert orch_b.get(low.id).state == QUEUED
        assert orch_b.get(high.id).state == QUEUED
        orch_b.start()
        _spin_until(lambda: len(executor_b.executed) == 2)
        assert executor_b.executed == ["high", "low"]
        orch_b.wait(low.id, timeout=10.0)
        assert orch_b.get(high.id).state == DONE
        assert store.get(orch_b.get(high.id).key) is not None

        # cleanup: unstick daemon #1's worker
        gate.set()
        orch_a.shutdown(drain=False, timeout=10.0)
        orch_b.shutdown(drain=False, timeout=10.0)

    def test_terminal_jobs_keep_answering_after_restart(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        store = RunStore(tmp_path / "store")
        orch_a = JobOrchestrator(
            FakeExecutor(), store, workers=1, journal=JobJournal(path)
        )
        orch_a.start()
        job = orch_a.submit({"name": "j"})
        orch_a.wait(job.id, timeout=10.0)
        orch_a.shutdown(drain=True, timeout=10.0)

        orch_b = JobOrchestrator(
            FakeExecutor(), store, workers=1, journal=JobJournal(path)
        )
        counts = orch_b.recover()
        assert counts == {"requeued": 0, "interrupted": 0, "terminal": 1}
        revived = orch_b.get(job.id)
        assert revived.state == DONE
        assert revived.key == job.key
        assert revived.trace_id == job.trace_id
        # ...and its artifacts are still fetchable through the store
        assert store.read_artifact(revived.key, "report.txt") == b"out j\n"
        # resubmission of the same work dedups against the store
        again = orch_b.submit({"name": "j"})
        assert again.dedup is True
        orch_b.shutdown(drain=False, timeout=10.0)

    def test_lifecycle_reconstructable_from_journal_alone(self, tmp_path):
        """The journal file by itself — daemon gone — tells the whole
        story: submit, start, per-point progress, completion."""
        path = tmp_path / "journal.jsonl"
        orch = JobOrchestrator(
            FakeExecutor(), RunStore(tmp_path / "store"), workers=1,
            journal=JobJournal(path),
        )
        orch.start()
        job = orch.submit({"name": "j"}, priority=3)
        orch.wait(job.id, timeout=10.0)
        orch.shutdown(drain=True, timeout=10.0)
        orch.journal.close()

        # raw JSONL: every line decodes on its own
        lines = path.read_text().strip().splitlines()
        events = [json.loads(line) for line in lines]
        assert [e["t"] for e in events] == [
            "submitted", "started", "progress", "progress", "done",
        ]
        submitted = events[0]
        assert submitted["priority"] == 3
        assert submitted["spec"] == {"name": "j"}
        assert submitted["trace_id"] == job.id
        assert len(submitted["spec_hash"]) == 16

        rec = JobJournal(path).reconstruct()[job.id]
        assert rec["state"] == "done"
        assert rec["progress"]["done"] == rec["progress"]["total"] == 2
        assert (
            rec["submitted_mono"]
            <= rec["started_mono"]
            <= rec["finished_mono"]
        )

    def test_recover_without_journal_is_a_noop(self, tmp_path):
        orch = JobOrchestrator(FakeExecutor(), RunStore(tmp_path / "s"))
        assert orch.recover() == {
            "requeued": 0, "interrupted": 0, "terminal": 0,
        }


# ----------------------------------------------------------------------
# Live event streaming (what the SSE endpoint serves)
# ----------------------------------------------------------------------
class TestStreamEvents:
    def test_stream_replays_history_then_follows_to_terminal(
        self, tmp_path
    ):
        executor = FakeExecutor()
        gate = executor.hold("j")
        orch = JobOrchestrator(executor, RunStore(tmp_path / "s"), workers=1)
        orch.start()
        job = orch.submit({"name": "j"})
        executor.started["j"].wait(5.0)

        collected: list[dict] = []

        def follow():
            for event in orch.stream_events(job.id, poll=POLL, timeout=10.0):
                collected.append(event)

        follower = threading.Thread(target=follow)
        follower.start()
        _spin_until(lambda: any(
            e["event"] == "started" for e in collected
        ))
        gate.set()
        follower.join(10.0)
        assert not follower.is_alive()

        kinds = [e["event"] for e in collected]
        assert kinds[0] == "snapshot"
        assert kinds[-1] == "done"  # the stream ends at the terminal event
        # strict lifecycle order with progress in between
        assert (
            kinds.index("submitted")
            < kinds.index("started")
            < kinds.index("progress")
            < kinds.index("done")
        )
        dones = [e["done"] for e in collected if e["event"] == "progress"]
        assert dones == [1, 2]
        orch.shutdown(drain=False, timeout=10.0)

    def test_snapshot_reports_queue_position(self, tmp_path):
        orch = JobOrchestrator(
            FakeExecutor(), RunStore(tmp_path / "s"), workers=1
        )
        # workers never started: all three stay queued
        orch.submit({"name": "a"}, priority=0)
        orch.submit({"name": "b"}, priority=9)
        third = orch.submit({"name": "c"}, priority=0)
        stream = orch.stream_events(third.id, timeout=0.1)
        snapshot = next(stream)
        assert snapshot["event"] == "snapshot"
        # priority 9 is ahead; FIFO among the priority-0 pair
        assert snapshot["queue_position"] == 3
        assert snapshot["job"]["state"] == QUEUED
        stream.close()

    def test_stream_unknown_job_raises(self, tmp_path):
        orch = JobOrchestrator(
            FakeExecutor(), RunStore(tmp_path / "s"), workers=1
        )
        with pytest.raises(KeyError):
            next(orch.stream_events("nope"))

    def test_stream_timeout_ends_without_terminal(self, tmp_path):
        orch = JobOrchestrator(
            FakeExecutor(), RunStore(tmp_path / "s"), workers=1
        )
        job = orch.submit({"name": "j"})  # never runs: no workers
        events = list(orch.stream_events(job.id, poll=POLL, timeout=0.1))
        kinds = [e["event"] for e in events]
        assert kinds[0] == "snapshot"
        assert "done" not in kinds
