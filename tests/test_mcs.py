"""Tests for the MCS queue lock."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import Machine, MachineConfig
from repro.proc import Compute, Load, Store
from repro.runtime.mcs import MCSLock
from repro.sim import SimulationError


def machine(n=8):
    return Machine(MachineConfig(n_nodes=n))


def test_mutual_exclusion_counter():
    m = machine()
    lock = MCSLock(m)
    counter = m.alloc(0, 8)

    def worker(node, rounds):
        for _ in range(rounds):
            yield from lock.acquire(node)
            v = yield Load(counter)
            yield Compute(15)  # widen the race window
            yield Store(counter, v + 1)
            yield from lock.release(node)

    for node in range(8):
        m.processor(node).run_thread(worker(node, 6))
    m.run()
    assert m.store.read(counter) == 48


def test_critical_sections_never_overlap():
    m = machine(4)
    lock = MCSLock(m)
    intervals = []

    def worker(node):
        for _ in range(4):
            yield from lock.acquire(node)
            start = m.sim.now
            yield Compute(25)
            intervals.append((start, m.sim.now, node))
            yield from lock.release(node)
            yield Compute(7 + node)

    for node in range(4):
        m.processor(node).run_thread(worker(node))
    m.run()
    intervals.sort()
    for (s1, e1, _), (s2, e2, _) in zip(intervals, intervals[1:]):
        assert e1 <= s2, f"overlap: ({s1},{e1}) vs ({s2},{e2})"


def test_uncontended_fast_path():
    m = machine(2)
    lock = MCSLock(m)
    times = []

    def solo():
        yield from lock.acquire(0)
        yield from lock.release(0)
        t0 = m.sim.now
        yield from lock.acquire(0)
        times.append(m.sim.now - t0)
        yield from lock.release(0)

    m.processor(0).run_thread(solo())
    m.run()
    assert times[0] < 40


def test_fifo_handoff_order():
    """MCS grants the lock in arrival order."""
    m = machine(4)
    lock = MCSLock(m)
    order = []

    def worker(node, delay):
        yield Compute(delay)
        yield from lock.acquire(node)
        order.append(node)
        yield Compute(500)  # hold long enough that all others queue
        yield from lock.release(node)

    # staggered arrivals: 0 first, then 1, 2, 3
    for node, delay in ((0, 0), (1, 100), (2, 200), (3, 300)):
        m.processor(node).run_thread(worker(node, delay))
    m.run()
    assert order == [0, 1, 2, 3]


def test_non_recursive_guard():
    m = machine(2)
    lock = MCSLock(m)

    def bad():
        yield from lock.acquire(0)
        yield from lock.acquire(0)

    m.processor(0).run_thread(bad())
    with pytest.raises(SimulationError):
        m.run()


def test_release_without_hold_guard():
    m = machine(2)
    lock = MCSLock(m)

    def bad():
        yield from lock.release(1)

    m.processor(1).run_thread(bad())
    with pytest.raises(SimulationError):
        m.run()


@given(st.integers(2, 6), st.integers(1, 5))
@settings(max_examples=15, deadline=None)
def test_mutual_exclusion_property(n_workers, rounds):
    m = machine(8)
    lock = MCSLock(m)
    counter = m.alloc(0, 8)

    def worker(node):
        for _ in range(rounds):
            yield from lock.acquire(node)
            v = yield Load(counter)
            yield Compute(9)
            yield Store(counter, v + 1)
            yield from lock.release(node)

    for node in range(n_workers):
        m.processor(node).run_thread(worker(node))
    m.run()
    assert m.store.read(counter) == n_workers * rounds
