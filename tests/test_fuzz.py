"""Tier-1 coverage for the fuzzing subsystem.

Covers: generation and run determinism, benign-seed cleanliness, the
oracle classifier, the seeded-bug campaign (find + minimize strictly
smaller), fresh-subprocess byte-identical reproduction, the corpus
replay hook (committed bundles under ``tests/corpus/`` plus any
``$REPRO_FUZZ_CORPUS``), pool teardown on campaign abort, run-store
GC, and the check-findings / fuzz metrics surfacing.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.fuzz.campaign import (
    STATS,
    CampaignConfig,
    minimize_scenario,
    run_campaign,
)
from repro.fuzz.corpus import Corpus, entry_id, replay_corpora
from repro.fuzz.gen import GEN_VERSION, generate, validate_scenario
from repro.fuzz.oracles import classify, primary, signature_of
from repro.fuzz.scenario import canonical, run_scenario

REPO = Path(__file__).resolve().parent.parent
COMMITTED_CORPUS = Path(__file__).resolve().parent / "corpus"


def _racy_handoff_scenario(n_nodes: int = 2, words: int = 1) -> dict:
    return {
        "gen": GEN_VERSION, "seed": 0,
        "machine": {"n_nodes": n_nodes, "topology": "mesh",
                    "cache_lines": 256, "line_size": 16,
                    "dir_hw_pointers": 5, "hw_contexts": 1},
        "checks": ["race", "coherence", "deadlock"],
        "faults": None, "mode": "spmd",
        "program": [{"op": "handoff", "racy": True, "words": words}],
        "diff_macro": False, "deadline_events": 150_000,
    }


class TestGeneration:
    def test_deterministic(self):
        for seed in range(30):
            assert canonical(generate(seed)) == canonical(generate(seed))

    def test_validates_and_varies(self):
        docs = {canonical(generate(s)) for s in range(40)}
        assert len(docs) > 30  # near-unique scenarios
        for s in range(40):
            validate_scenario(generate(s))  # belt and braces

    def test_single_mp_handler_family_per_program(self):
        # bulk / MP-barrier / MP-reduce register fixed handler names;
        # two of a family on one machine would crash at registration
        from repro.fuzz.gen import _mp_family

        for seed in range(300):
            sc = generate(seed)
            if sc["mode"] != "spmd":
                continue
            fams = [f for op in sc["program"]
                    if (f := _mp_family(op)) is not None]
            assert len(fams) == len(set(fams)), (seed, sc["program"])

    def test_inject_bug_arms_some_seeds(self):
        armed = [
            s for s in range(40)
            if generate(s, inject_bug=True) != generate(s)
        ]
        assert armed  # some scenarios carry the seeded bug


class TestRunScenario:
    def test_benign_seeds_clean_and_deterministic(self):
        for seed in range(12):
            sc = generate(seed)
            a, b = run_scenario(sc), run_scenario(sc)
            assert canonical(a) == canonical(b), f"seed {seed} nondeterministic"
            assert not classify(a), f"seed {seed}: {classify(a)}"

    def test_racy_handoff_flagged(self):
        verdicts = classify(run_scenario(_racy_handoff_scenario()))
        assert primary(verdicts) is not None
        assert primary(verdicts)[0] == "checker:race"

    def test_classifier_orders_by_severity(self):
        verdicts = classify({
            "check": {"counts": {"race": 2}, "findings": [
                {"checker": "race", "kind": "write-read", "message": "m"}
            ]},
            "error": "SimulationError: boom",
        })
        assert [v["oracle"] for v in verdicts] == ["crash", "checker:race"]
        assert signature_of(verdicts) == [
            ["checker:race", "write-read"], ["crash", "SimulationError"],
        ]


class TestCampaign:
    def test_benign_campaign_clean(self):
        report = run_campaign(CampaignConfig(seeds=8, budget=None))
        assert report["seeds_run"] == 8
        assert report["findings"] == []

    def test_seeded_bug_found_and_minimized(self, tmp_path):
        report = run_campaign(CampaignConfig(
            seeds=10, base_seed=5, budget=None, inject_bug=True,
            corpus_dir=str(tmp_path / "corpus"), bundle_artifacts=False,
        ))
        findings = report["findings"]
        assert findings, "campaign missed the seeded bug"
        for f in findings:
            assert f["primary"][0] == "checker:race"
            # the acceptance bar: strictly smaller than the original
            assert f["min_bytes"] < f["orig_bytes"]
            assert f["corpus_id"]
        # the corpus replays to the recorded signature
        corpus = Corpus(tmp_path / "corpus")
        assert corpus.ids()
        for bundle in corpus.entries():
            got = signature_of(classify(run_scenario(bundle["scenario"])))
            assert got == bundle["finding"]["signature"]

    def test_minimizer_shrinks_preserving_primary(self):
        sc = _racy_handoff_scenario(n_nodes=4, words=4)
        sc["program"].append({"op": "compute", "cycles": 1_000})
        sc["diff_macro"] = True
        target = primary(classify(run_scenario(sc)))
        minimized, runs = minimize_scenario(sc, target, max_runs=60)
        assert runs > 0
        assert len(canonical(minimized)) < len(canonical(sc))
        assert primary(classify(run_scenario(minimized))) == target

    def test_campaign_updates_stats(self):
        before = STATS.scenarios
        run_campaign(CampaignConfig(seeds=3, budget=None))
        assert STATS.scenarios >= before + 3

    def test_abort_tears_down_pools(self, monkeypatch):
        from repro.perf import sweep

        torn_down = []
        monkeypatch.setattr(
            sweep, "shutdown_pools", lambda: torn_down.append(True)
        )

        def boom(*a, **kw):
            raise KeyboardInterrupt()

        monkeypatch.setattr(sweep.SweepRunner, "map", boom)
        with pytest.raises(KeyboardInterrupt):
            run_campaign(CampaignConfig(seeds=4, budget=None))
        assert torn_down  # no leaked worker processes on abort


class TestReproducerDeterminism:
    def test_fresh_process_byte_identical(self, tmp_path):
        """A reproducer re-run in a fresh interpreter yields the same
        finding and result, byte for byte."""
        sc = _racy_handoff_scenario()
        here = run_scenario(sc)
        script = (
            "import json, sys\n"
            "from repro.fuzz.scenario import run_scenario, canonical\n"
            "sc = json.load(open(sys.argv[1]))\n"
            "sys.stdout.write(canonical(run_scenario(sc)))\n"
        )
        sc_path = tmp_path / "scenario.json"
        sc_path.write_text(canonical(sc))
        env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
        out = subprocess.run(
            [sys.executable, "-c", script, str(sc_path)],
            capture_output=True, text=True, env=env, cwd=REPO, timeout=120,
        )
        assert out.returncode == 0, out.stderr
        assert out.stdout == canonical(here)


def _corpus_params():
    paths = [COMMITTED_CORPUS]
    extra = os.environ.get("REPRO_FUZZ_CORPUS")
    if extra:
        paths.append(extra)
    return replay_corpora(paths)


@pytest.mark.parametrize(
    "label,bundle",
    _corpus_params() or [("empty", None)],
    ids=lambda v: v if isinstance(v, str) else "",
)
def test_corpus_replay(label, bundle):
    """Every committed (and locally collected) reproducer still
    produces the oracle signature it was filed with."""
    if bundle is None:
        pytest.skip("no corpus bundles present")
    validate_scenario(bundle["scenario"])
    got = signature_of(classify(run_scenario(bundle["scenario"])))
    assert got == bundle["finding"]["signature"], (
        f"{label}: regression reproducer diverged"
    )


class TestCorpusStore:
    def test_content_addressed_dedupe(self, tmp_path):
        corpus = Corpus(tmp_path)
        sc = _racy_handoff_scenario()
        sig = [["checker:race", "write-read"]]
        eid1, created1 = corpus.add(sc, sig, {"seed": 0})
        eid2, created2 = corpus.add(sc, sig, {"seed": 0})
        assert eid1 == eid2 == entry_id(sc, sig)
        assert created1 and not created2
        assert corpus.ids() == [eid1]
        assert corpus.load(eid1)["scenario"] == sc

    def test_reproducer_artifacts_surface_check_findings(self):
        from repro.fuzz.corpus import reproducer_artifacts

        arts = reproducer_artifacts(_racy_handoff_scenario())
        run = json.loads(arts["run.json"])
        rows = [r for r in run["metrics"]["rows"]
                if r["name"] == "check.findings"]
        assert rows and rows[0]["labels"]["checker"] == "race"
        assert run["check"]["counts"]["race"] == rows[0]["value"]


class TestStoreGC:
    def _publish(self, store, key: str, published: float) -> None:
        store.publish(key, {"experiment": "x"}, {"report.txt": b"r" * 100})
        # backdate for age-based GC
        import json as _json

        path = store.run_dir(key) / "entry.json"
        entry = _json.loads(path.read_bytes())
        entry["published"] = published
        path.write_bytes(_json.dumps(entry).encode())

    def test_gc_by_age_and_bytes(self, tmp_path):
        import time

        from repro.serve.store import RunStore

        store = RunStore(tmp_path)
        now = time.time()
        self._publish(store, "aa" + "0" * 62, now - 10 * 86400)
        self._publish(store, "bb" + "0" * 62, now - 5 * 86400)
        self._publish(store, "cc" + "0" * 62, now)
        assert store.count() == 3
        assert store.gc(max_age_days=7) == 1
        assert store.get("aa" + "0" * 62) is None
        assert store.count() == 2
        # oldest-first down to the byte budget
        assert store.gc(max_bytes=store._run_bytes("cc" + "0" * 62)) == 1
        assert store.get("bb" + "0" * 62) is None
        assert store.gc(everything=True) == 1
        assert store.count() == 0

    def test_serve_store_cli(self, tmp_path, capsys):
        from repro.serve.__main__ import main
        from repro.serve.store import RunStore

        store = RunStore(tmp_path)
        store.publish("dd" + "0" * 62, {"experiment": "x"}, {"report.txt": b"r"})
        assert main(["store", "stats", "--store-dir", str(tmp_path)]) == 0
        assert "runs:      1" in capsys.readouterr().out
        assert main(["store", "gc", "--all", "--store-dir", str(tmp_path)]) == 0
        assert store.count() == 0


class TestMetricsSurfacing:
    def test_check_findings_rows_in_session_metrics(self):
        from repro.obs.session import ObsConfig, session

        sc = _racy_handoff_scenario()
        with session(ObsConfig(check=("race",))) as s:
            run_scenario({**sc, "checks": []})  # session attaches its own
            data = s.data()
        rows = [
            r for r in data["metrics"]["rows"]
            if r["name"] == "check.findings"
        ]
        assert rows and rows[0]["labels"] == {"checker": "race"}
        assert rows[0]["value"] > 0
        # idempotent: a second data() must not double the rows
        rows2 = [
            r for r in s.data()["metrics"]["rows"]
            if r["name"] == "check.findings"
        ]
        assert rows == rows2

    def test_fuzz_metrics_registered(self):
        from repro.obs.metrics import MetricsRegistry

        run_campaign(CampaignConfig(seeds=2, budget=None))
        reg = MetricsRegistry()
        STATS.register_metrics(reg)
        snap = reg.collect()
        assert snap.value("fuzz.scenarios") >= 2
        assert snap.value("fuzz.campaigns") >= 1
        assert snap.total("fuzz.findings") >= 0

    def test_prometheus_renders_fuzz_counters(self):
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.promexport import render_prometheus

        reg = MetricsRegistry()
        STATS.register_metrics(reg)
        text = render_prometheus(reg.collect())
        assert "fuzz_scenarios" in text
        assert 'fuzz_findings{oracle="crash"}' in text


class TestServeFuzzSpec:
    def test_key_and_execute(self):
        from repro.serve.executor import ExperimentExecutor

        ex = ExperimentExecutor(jobs=1)
        spec = {"fuzz": {"seeds": 3, "budget": 30}}
        key = ex.key_for(spec)
        assert key == ex.key_for({"fuzz": {"budget": 30, "seeds": 3}})
        events = []
        meta, artifacts = ex.execute(spec, progress=events.append)
        assert meta["experiment"] == "fuzz"
        assert meta["findings"] == 0
        assert set(artifacts) == {"report.txt", "campaign.json", "findings.json"}
        report = json.loads(artifacts["campaign.json"])
        assert report["seeds_run"] == 3
        assert events and events[-1]["done"] == 3

    def test_bad_fuzz_specs_rejected(self):
        from repro.serve.executor import ExperimentExecutor

        ex = ExperimentExecutor()
        for spec in (
            {"fuzz": None},
            {"fuzz": {"seeds": 0}},
            {"fuzz": {"budget": -1}},
            {"fuzz": {"wat": 1}},
            {"fuzz": {"seeds": True}},
            {"fuzz": {}, "experiment": "fig8"},
        ):
            with pytest.raises(ValueError):
                ex.key_for(spec)
