"""Property-based tests (hypothesis) on core invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import Machine, MachineConfig
from repro.memory import (
    AccessKind,
    DirState,
    LineState,
    make_addr,
)
from repro.memory.store import BackingStore
from repro.proc import Compute, FetchOp, Load, Store


# ----------------------------------------------------------------------
# Coherence protocol invariants under arbitrary access interleavings
# ----------------------------------------------------------------------
access_op = st.tuples(
    st.integers(0, 3),                    # node
    st.integers(0, 5),                    # line index
    st.sampled_from(["r", "w", "p"]),     # access kind
)


@given(st.lists(access_op, min_size=1, max_size=40))
@settings(max_examples=60, deadline=None)
def test_coherence_invariants_hold_after_quiesce(ops):
    m = Machine(MachineConfig(n_nodes=4, cache_lines=8))
    eng = m.coherence
    kinds = {"r": AccessKind.READ, "w": AccessKind.WRITE, "p": AccessKind.PREFETCH}
    lines = sorted({make_addr(1, 0x100 + 0x10 * li) for _, li, _ in ops})
    for node, li, k in ops:
        addr = make_addr(1, 0x100 + 0x10 * li)
        eng.access(node, addr, kinds[k], lambda: None)
    m.run()

    for line in lines:
        holders_m = [
            n for n in range(4)
            if m.nodes[n].cache.state(line)
            in (LineState.MODIFIED, LineState.EXCLUSIVE)
        ]
        holders_s = [n for n in range(4) if m.nodes[n].cache.state(line) is LineState.SHARED]
        entry = m.nodes[1].directory.peek(line)
        # SWMR: at most one exclusive/modified copy, never next to shared
        assert len(holders_m) <= 1
        if holders_m:
            assert not holders_s
            assert entry is not None
            assert entry.state is DirState.EXCLUSIVE
            assert entry.owner == holders_m[0]
        # every shared holder is tracked by the directory (it may track
        # extra, stale sharers from silent evictions — never fewer)
        if entry is not None and holders_s:
            assert set(holders_s) <= entry.sharers


@given(
    st.integers(1, 4),     # writers
    st.integers(1, 12),    # increments per writer
)
@settings(max_examples=20, deadline=None)
def test_fetchop_is_atomic_under_any_contention(writers, per_writer):
    m = Machine(MachineConfig(n_nodes=4))
    addr = m.alloc(0, 8)

    def bump(times):
        for _ in range(times):
            yield FetchOp(addr, lambda v: v + 1)
            yield Compute(3)

    for w in range(writers):
        m.processor(w).run_thread(bump(per_writer))
    m.run()
    assert m.store.read(addr) == writers * per_writer


@given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 31)), min_size=1, max_size=30))
@settings(max_examples=40, deadline=None)
def test_last_writer_wins_per_address(writes):
    """Sequentially-issued writes from varying nodes: the final value
    at each address is the last write issued to it."""
    m = Machine(MachineConfig(n_nodes=4))
    base = m.alloc(0, 32 * 8)
    expected = {}

    def driver():
        for i, (node, slot) in enumerate(writes):
            expected[slot] = i
            # route each write through the owning node's processor
            done = []
            m.coherence.access(
                node, base + slot * 8, AccessKind.WRITE,
                lambda i=i, slot=slot: (m.store.write(base + slot * 8, i), done.append(1)),
            )
            yield Compute(200)  # let it retire before the next write

    m.processor(0).run_thread(driver())
    m.run()
    for slot, val in expected.items():
        assert m.store.read(base + slot * 8) == val


# ----------------------------------------------------------------------
# Backing-store snapshot round trips
# ----------------------------------------------------------------------
@given(
    st.dictionaries(st.integers(0, 31), st.integers(-1000, 1000), max_size=16),
    st.integers(1, 32),
)
@settings(max_examples=60)
def test_snapshot_roundtrip(values, window_words):
    store = BackingStore()
    nbytes = window_words * 4
    for off_w, v in values.items():
        store.write(0x1000 + off_w * 4, v)
    snap = store.snapshot_range(0x1000, nbytes)
    store.write_snapshot(0x8000, nbytes, snap)
    for off in range(0, nbytes, 4):
        assert store.read(0x8000 + off) == store.read(0x1000 + off)


@given(st.integers(1, 64), st.integers(0, 100))
@settings(max_examples=40)
def test_copy_range_window_semantics(n_words, stale):
    store = BackingStore()
    store.write(0x8000, stale)  # pre-existing destination value
    for i in range(n_words):
        store.write(0x1000 + i * 4, i + 1)
    store.copy_range(0x1000, 0x8000, n_words * 4)
    assert store.read(0x8000) == 1  # overwritten, not merged


# ----------------------------------------------------------------------
# Fork/join trees of arbitrary shape compute the right answer
# ----------------------------------------------------------------------
tree_strategy = st.recursive(
    st.integers(1, 5),
    lambda children: st.lists(children, min_size=1, max_size=3),
    max_leaves=12,
)


@given(tree_strategy, st.sampled_from(["hybrid", "sm"]))
@settings(max_examples=25, deadline=None)
def test_forkjoin_arbitrary_trees(tree, kind):
    from repro.runtime import Runtime

    def tree_sum(shape):
        if isinstance(shape, int):
            return shape
        return sum(tree_sum(c) for c in shape)

    def walker(rt, node, shape):
        if isinstance(shape, int):
            yield Compute(5 + shape)
            return shape
        futures = []
        for child in shape[:-1]:
            fut = yield from rt.fork(
                node, lambda rt, nd, c=child: walker(rt, nd, c)
            )
            futures.append(fut)
        total = yield from walker(rt, node, shape[-1])
        for fut in reversed(futures):
            total += yield from rt.join(node, fut)
        return total

    m = Machine(MachineConfig(n_nodes=4))
    rt = Runtime(m, scheduler=kind)
    result, _ = rt.run_to_completion(0, lambda rt, nd: walker(rt, nd, tree))
    assert result == tree_sum(tree)


# ----------------------------------------------------------------------
# Simulated memory agrees across arbitrary reader/writer placements
# ----------------------------------------------------------------------
@given(st.integers(0, 3), st.integers(0, 3), st.integers(-5000, 5000))
@settings(max_examples=30, deadline=None)
def test_write_then_read_any_nodes(writer, reader, value):
    m = Machine(MachineConfig(n_nodes=4))
    addr = m.alloc(2, 8)
    seen = []

    def w():
        yield Store(addr, value)

    def r():
        yield Compute(1000)
        v = yield Load(addr)
        seen.append(v)

    m.processor(writer).run_thread(w())
    m.processor(reader).run_thread(r())
    m.run()
    assert seen == [value]
