"""Tests for the processor effect engine and message interrupts,
running on a fully assembled small machine."""

import pytest

from repro.cmmu.message import BlockRef
from repro.machine import Machine, MachineConfig
from repro.memory import make_addr
from repro.proc import (
    Compute,
    FetchOp,
    Load,
    Prefetch,
    Send,
    SetIMask,
    Store,
    Storeback,
    Suspend,
    Yield,
)
from repro.sim import SimulationError


def small_machine(n=4, **cfg_kw):
    return Machine(MachineConfig(n_nodes=n, **cfg_kw))


def run_to_end(m, gens_by_node):
    """Run one generator per node; returns dict node -> return value."""
    results = {}
    for node, gen in gens_by_node.items():
        m.processor(node).run_thread(
            gen, on_finish=lambda v, node=node: results.setdefault(node, v)
        )
    m.run()
    return results


class TestBasicEffects:
    def test_compute_advances_clock(self):
        m = small_machine()

        def t():
            yield Compute(100)
            return m.sim.now

        res = run_to_end(m, {0: t()})
        assert res[0] == 100

    def test_load_store_roundtrip(self):
        m = small_machine()
        addr = m.alloc(1, 8)

        def writer():
            yield Store(addr, 42)

        def reader():
            yield Compute(500)  # let the write land first
            v = yield Load(addr)
            return v

        res = run_to_end(m, {0: writer(), 2: reader()})
        assert res[2] == 42

    def test_load_default_zero(self):
        m = small_machine()
        addr = m.alloc(3, 8)

        def t():
            return (yield Load(addr))

        assert run_to_end(m, {0: t()})[0] == 0

    def test_fetchop_atomicity_under_contention(self):
        m = small_machine()
        addr = m.alloc(0, 8)

        def incr(times):
            for _ in range(times):
                yield FetchOp(addr, lambda v: v + 1)

        run_to_end(m, {n: incr(10) for n in range(4)})
        assert m.store.read(addr) == 40

    def test_fetchop_returns_old_value(self):
        m = small_machine()
        addr = m.alloc(0, 8)

        def t():
            old1 = yield FetchOp(addr, lambda v: v + 5)
            old2 = yield FetchOp(addr, lambda v: v + 5)
            return (old1, old2)

        assert run_to_end(m, {1: t()})[1] == (0, 5)

    def test_prefetch_then_load_hits(self):
        m = small_machine()
        addr = m.alloc(1, 8)

        def with_prefetch():
            yield Prefetch(addr)
            yield Compute(200)
            t0 = m.sim.now
            yield Load(addr)
            return m.sim.now - t0

        res = run_to_end(m, {0: with_prefetch()})
        assert res[0] == m.config.coherence.load_hit

    def test_thread_return_value(self):
        m = small_machine()

        def t():
            yield Compute(1)
            return "done"

        assert run_to_end(m, {0: t()})[0] == "done"

    def test_ready_queue_runs_sequentially(self):
        m = small_machine()
        order = []

        def t(tag):
            yield Compute(10)
            order.append((tag, m.sim.now))

        p = m.processor(0)
        p.run_thread(t("a"))
        p.run_thread(t("b"))
        m.run()
        assert [tag for tag, _ in order] == ["a", "b"]
        assert order[1][1] >= order[0][1] + 10

    def test_yield_rotates_ready_queue(self):
        m = small_machine()
        order = []

        def spinner():
            yield Compute(1)
            order.append("spin1")
            yield Yield()
            order.append("spin2")

        def other():
            yield Compute(1)
            order.append("other")

        p = m.processor(0)
        p.run_thread(spinner())
        p.run_thread(other())
        m.run()
        assert order == ["spin1", "other", "spin2"]


class TestSuspendResume:
    def test_suspend_until_external_resume(self):
        m = small_machine()
        resume_box = []

        def sleeper():
            v = yield Suspend(resume_box.append)
            return v

        def waker():
            yield Compute(300)
            resume_box[0]("wakeup")

        res = {}
        m.processor(0).run_thread(sleeper(), on_finish=lambda v: res.setdefault("s", v))
        m.processor(1).run_thread(waker())
        m.run()
        assert res["s"] == "wakeup"

    def test_suspend_frees_processor_for_other_work(self):
        m = small_machine()
        resume_box = []
        order = []

        def sleeper():
            yield Suspend(resume_box.append)
            order.append("sleeper")

        def other():
            yield Compute(5)
            order.append("other")
            resume_box[0](None)

        p = m.processor(0)
        p.run_thread(sleeper())
        p.run_thread(other())
        m.run()
        assert order == ["other", "sleeper"]

    def test_double_resume_rejected(self):
        m = small_machine()
        resume_box = []

        def sleeper():
            yield Suspend(resume_box.append)

        m.processor(0).run_thread(sleeper())

        def bad_waker():
            yield Compute(10)
            resume_box[0](None)
            resume_box[0](None)

        m.processor(1).run_thread(bad_waker())
        with pytest.raises(SimulationError):
            m.run()


class TestMessaging:
    def test_simple_message_handler(self):
        m = small_machine()
        got = []

        def handler(msg):
            got.append((msg.src, msg.operands))
            yield Compute(2)

        m.processor(2).register_handler("ping", handler)

        def sender():
            yield Send(2, "ping", operands=(7, 8))

        run_to_end(m, {0: sender()})
        assert got == [(0, (7, 8))]

    def test_send_is_nonblocking_after_launch(self):
        m = small_machine()

        def handler(msg):
            yield Compute(1)

        m.processor(3).register_handler("ping", handler)

        def sender():
            t0 = m.sim.now
            yield Send(3, "ping", operands=(1, 2, 3))
            return m.sim.now - t0

        cost = run_to_end(m, {0: sender()})[0]
        # paper: "a message can be sent with just a few user-level
        # instructions" — the sender pays describe+launch only
        assert cost <= 12

    def test_handler_runs_even_when_receiver_computing(self):
        m = small_machine()
        handled_at = []

        def handler(msg):
            handled_at.append(m.sim.now)
            yield Compute(1)

        m.processor(1).register_handler("ping", handler)

        def busy():
            yield Compute(10_000)
            return m.sim.now

        def sender():
            yield Send(1, "ping")

        res = run_to_end(m, {1: busy(), 0: sender()})
        # the interrupt borrowed the pipeline mid-computation
        assert handled_at[0] < 10_000
        assert res[1] >= 10_000

    def test_masked_interrupts_defer_handler(self):
        m = small_machine()
        handled_at = []

        def handler(msg):
            handled_at.append(m.sim.now)
            yield Compute(1)

        m.processor(1).register_handler("ping", handler)

        def masked_then_unmask():
            yield SetIMask(True)
            yield Compute(2000)
            yield SetIMask(False)
            yield Compute(10)

        def sender():
            yield Send(1, "ping")

        run_to_end(m, {1: masked_then_unmask(), 0: sender()})
        assert handled_at and handled_at[0] >= 2000

    def test_messages_handled_fifo(self):
        m = small_machine()
        got = []

        def handler(msg):
            got.append(msg.operands[0])
            yield Compute(50)

        m.processor(1).register_handler("seq", handler)

        def sender():
            for i in range(5):
                yield Send(1, "seq", operands=(i,))

        run_to_end(m, {0: sender()})
        assert got == [0, 1, 2, 3, 4]

    def test_unknown_handler_raises(self):
        m = small_machine()

        def sender():
            yield Send(1, "nope")

        m.processor(0).run_thread(sender())
        with pytest.raises(SimulationError):
            m.run()

    def test_handler_can_send(self):
        """Request/response round trip through two handlers."""
        m = small_machine()
        replies = []

        def server(msg):
            yield Compute(3)
            yield Send(msg.src, "reply", operands=(msg.operands[0] * 2,))

        def reply_handler(msg):
            replies.append(msg.operands[0])
            yield Compute(1)

        m.processor(1).register_handler("req", server)
        m.processor(0).register_handler("reply", reply_handler)

        def client():
            yield Send(1, "req", operands=(21,))

        run_to_end(m, {0: client()})
        assert replies == [42]


class TestBulkTransfer:
    def test_dma_block_transfer_moves_values(self):
        m = small_machine()
        src = m.alloc(0, 256)
        dst = m.alloc(1, 256)
        done = []

        def handler(msg):
            target = msg.operands[0]
            yield Storeback(target)
            done.append(m.sim.now)

        m.processor(1).register_handler("bulk", handler)

        def sender():
            for i in range(32):
                yield Store(src + i * 8, i * 3)
            yield Send(1, "bulk", operands=(dst,), blocks=[BlockRef(src, 256)])

        run_to_end(m, {0: sender()})
        assert done
        assert [m.store.read(dst + i * 8) for i in range(32)] == [
            i * 3 for i in range(32)
        ]

    def test_dma_flushes_destination_cache(self):
        """After a transfer the receiver's cached copies of the target
        range are gone (consistent with its local memory)."""
        m = small_machine()
        src = m.alloc(0, 64)
        dst = m.alloc(1, 64)

        def handler(msg):
            yield Storeback(msg.operands[0])

        m.processor(1).register_handler("bulk", handler)

        def receiver_warms_cache():
            for i in range(8):
                yield Load(dst + i * 8)

        def sender():
            yield Compute(2000)  # after receiver warmed its cache
            yield Store(src, 99)
            yield Send(1, "bulk", operands=(dst,), blocks=[BlockRef(src, 64)])

        run_to_end(m, {1: receiver_warms_cache(), 0: sender()})
        from repro.memory import LineState, line_of

        assert m.nodes[1].cache.state(line_of(dst)) is LineState.INVALID
        assert m.store.read(dst) == 99

    def test_larger_transfer_takes_longer(self):
        times = {}
        for size in (64, 1024):
            m = small_machine()
            src = m.alloc(0, size)
            dst = m.alloc(1, size)
            done = []

            def handler(msg):
                yield Storeback(msg.operands[0])
                done.append(m.sim.now)

            m.processor(1).register_handler("bulk", handler)

            def sender():
                yield Send(1, "bulk", operands=(dst,), blocks=[BlockRef(src, size)])

            run_to_end(m, {0: sender()})
            times[size] = done[0]
        assert times[1024] > times[64] + 200

    def test_storeback_outside_handler_rejected(self):
        m = small_machine()

        def t():
            yield Storeback(0x100)

        m.processor(0).run_thread(t())
        with pytest.raises(SimulationError):
            m.run()

    def test_descriptor_limit_enforced(self):
        m = small_machine()

        def t():
            yield Send(1, "x", operands=tuple(range(20)))

        m.processor(0).run_thread(t())
        with pytest.raises(ValueError):
            m.run()


class TestMachineAlloc:
    def test_alloc_line_aligned_and_disjoint(self):
        m = small_machine()
        a = m.alloc(0, 24)
        b = m.alloc(0, 8)
        assert a % 16 == 0
        assert b >= a + 24
        from repro.memory import line_of

        assert line_of(a) != line_of(b)

    def test_alloc_homed_at_node(self):
        m = small_machine()
        from repro.memory import home_of

        assert home_of(m.alloc(2, 8)) == 2

    def test_alloc_custom_alignment(self):
        m = small_machine()
        a = m.alloc(0, 8, align=256)
        from repro.memory import offset_of

        assert offset_of(a) % 256 == 0

    def test_alloc_bad_size(self):
        m = small_machine()
        with pytest.raises(ValueError):
            m.alloc(0, 0)
