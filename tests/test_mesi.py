"""Tests for the MESI protocol option (exclusive-clean state)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import Machine, MachineConfig
from repro.memory import AccessKind, CoherenceParams, DirState, LineState, make_addr
from repro.proc import Compute, Load, Store


def machine(mesi=True, n=4):
    return Machine(
        MachineConfig(n_nodes=n, coherence=CoherenceParams(mesi=mesi))
    )


def access(m, node, addr, kind):
    done = []
    m.coherence.access(node, addr, kind, lambda: done.append(m.sim.now))
    start = m.sim.now
    m.run()
    return done[0] - start


class TestMesiStates:
    def test_sole_read_fills_exclusive(self):
        m = machine()
        addr = make_addr(1, 0x100)
        access(m, 0, addr, AccessKind.READ)
        assert m.nodes[0].cache.state(addr & ~15) is LineState.EXCLUSIVE
        e = m.nodes[1].directory.peek(addr & ~15)
        assert e.state is DirState.EXCLUSIVE and e.owner == 0

    def test_second_reader_downgrades_to_shared(self):
        m = machine()
        addr = make_addr(1, 0x100)
        line = addr & ~15
        access(m, 0, addr, AccessKind.READ)
        access(m, 2, addr, AccessKind.READ)
        assert m.nodes[0].cache.state(line) is LineState.SHARED
        assert m.nodes[2].cache.state(line) is LineState.SHARED

    def test_store_to_exclusive_is_silent_upgrade(self):
        m = machine()
        addr = make_addr(1, 0x100)
        line = addr & ~15
        access(m, 0, addr, AccessKind.READ)
        txns_before = m.coherence.stats.transactions
        cost = access(m, 0, addr, AccessKind.WRITE)
        assert m.coherence.stats.transactions == txns_before  # no new txn
        assert cost == m.config.coherence.store_hit
        assert m.nodes[0].cache.state(line) is LineState.MODIFIED

    def test_msi_store_after_read_pays_transaction(self):
        m = machine(mesi=False)
        addr = make_addr(1, 0x100)
        access(m, 0, addr, AccessKind.READ)
        txns_before = m.coherence.stats.transactions
        cost = access(m, 0, addr, AccessKind.WRITE)
        assert m.coherence.stats.transactions == txns_before + 1
        assert cost > m.config.coherence.store_hit

    def test_remote_write_steals_exclusive_clean(self):
        m = machine()
        addr = make_addr(1, 0x100)
        line = addr & ~15
        access(m, 0, addr, AccessKind.READ)   # node 0 E
        access(m, 2, addr, AccessKind.WRITE)
        assert m.nodes[0].cache.state(line) is LineState.INVALID
        assert m.nodes[2].cache.state(line) is LineState.MODIFIED

    def test_read_of_exclusive_clean_line_forwards(self):
        m = machine()
        addr = make_addr(1, 0x100)
        line = addr & ~15
        access(m, 0, addr, AccessKind.READ)
        access(m, 2, addr, AccessKind.READ)
        e = m.nodes[1].directory.peek(line)
        assert e.state is DirState.SHARED and e.sharers == {0, 2}


class TestMesiIntegration:
    def test_read_modify_write_pattern_cheaper_with_mesi(self):
        """The private read-then-write pattern (e.g. popping your own
        task queue) costs one transaction under MESI, two under MSI."""
        costs = {}
        for mesi in (False, True):
            m = machine(mesi=mesi)
            addr = m.alloc(1, 8)
            box = []

            def worker():
                t0 = m.sim.now
                v = yield Load(addr)
                yield Store(addr, v + 1)
                box.append(m.sim.now - t0)

            m.processor(0).run_thread(worker())
            m.run()
            costs[mesi] = box[0]
        assert costs[True] < costs[False]

    def test_values_identical_under_both_protocols(self):
        results = {}
        for mesi in (False, True):
            m = machine(mesi=mesi)
            addr = m.alloc(0, 8)

            def a():
                yield Store(addr, 5)

            def b():
                yield Compute(500)
                v = yield Load(addr)
                yield Store(addr, v * 3)

            m.processor(1).run_thread(a())
            m.processor(2).run_thread(b())
            m.run()
            results[mesi] = m.store.read(addr)
        assert results[False] == results[True] == 15

    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3),
                              st.sampled_from(["r", "w"])), min_size=1, max_size=25))
    @settings(max_examples=40, deadline=None)
    def test_mesi_swmr_property(self, ops):
        m = machine(mesi=True)
        kinds = {"r": AccessKind.READ, "w": AccessKind.WRITE}
        for node, li, k in ops:
            m.coherence.access(
                node, make_addr(1, 0x100 + li * 16), kinds[k], lambda: None
            )
        m.run()
        for li in range(4):
            line = make_addr(1, 0x100 + li * 16)
            exclusive = [
                n for n in range(4)
                if m.nodes[n].cache.state(line)
                in (LineState.EXCLUSIVE, LineState.MODIFIED)
            ]
            shared = [
                n for n in range(4)
                if m.nodes[n].cache.state(line) is LineState.SHARED
            ]
            assert len(exclusive) <= 1
            if exclusive:
                assert not shared
