"""Tests for combining-tree reductions (all-reduce)."""

import operator

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import Machine, MachineConfig
from repro.proc import Compute
from repro.runtime.reduce import MPTreeReduce, SMTreeReduce


def machine(n):
    return Machine(MachineConfig(n_nodes=n))


def run_reduce(m, red, values, op=operator.add, episodes=1, skews=None):
    """Every node contributes values[node]; returns per-node results."""
    n = m.n_nodes
    skews = skews or [0] * n
    results = {node: [] for node in range(n)}

    def participant(node):
        yield Compute(skews[node])
        for ep in range(episodes):
            total = yield from red.reduce(node, values[node] + ep, op)
            results[node].append(total)
            yield Compute(3)

    for node in range(n):
        m.processor(node).run_thread(participant(node))
    m.run()
    return results


@pytest.mark.parametrize("make", [
    lambda m, op: SMTreeReduce(m, arity=2),
    lambda m, op: MPTreeReduce(m, op, fanout=8),
], ids=["sm", "mp"])
class TestReduceSemantics:
    def test_sum_all_nodes(self, make):
        m = machine(16)
        red = make(m, operator.add)
        values = [3 * node + 1 for node in range(16)]
        res = run_reduce(m, red, values)
        expected = sum(values)
        assert all(r == [expected] for r in res.values())

    def test_max_reduction(self, make):
        m = machine(8)
        red = make(m, max)
        values = [(node * 37) % 23 for node in range(8)]
        res = run_reduce(m, red, values, op=max)
        assert all(r == [max(values)] for r in res.values())

    def test_multiple_episodes(self, make):
        m = machine(8)
        red = make(m, operator.add)
        values = [node for node in range(8)]
        res = run_reduce(m, red, values, episodes=3)
        for node in range(8):
            # episode ep adds +ep per node
            assert res[node] == [sum(values) + 8 * ep for ep in range(3)]

    def test_skewed_arrivals(self, make):
        m = machine(16)
        red = make(m, operator.add)
        skews = [0] * 16
        skews[11] = 4000
        res = run_reduce(m, red, [1] * 16, skews=skews)
        assert all(r == [16] for r in res.values())

    def test_two_nodes(self, make):
        m = machine(2)
        red = make(m, operator.add)
        res = run_reduce(m, red, [10, 20])
        assert res[0] == [30] and res[1] == [30]

    def test_64_nodes(self, make):
        m = machine(64)
        red = make(m, operator.add)
        res = run_reduce(m, red, list(range(64)))
        assert all(r == [sum(range(64))] for r in res.values())


class TestReduceSpecifics:
    def test_sm_arity_validation(self):
        with pytest.raises(ValueError):
            SMTreeReduce(machine(4), arity=1)

    def test_mp_fanout_validation(self):
        with pytest.raises(ValueError):
            MPTreeReduce(machine(4), operator.add, fanout=1)

    def test_mp_mismatched_op_rejected(self):
        m = machine(4)
        red = MPTreeReduce(m, operator.add)
        errors = []

        def t(node):
            try:
                yield from red.reduce(node, 1, operator.mul)
            except ValueError as e:
                errors.append(e)

        m.processor(0).run_thread(t(0))
        m.run(until=10_000)
        assert errors

    def test_mp_reduce_faster_than_sm_on_64(self):
        """Bundling data with the combining signal: the MP reduction
        keeps (even extends) the MP barrier's advantage."""
        cycles = {}
        for name in ("sm", "mp"):
            m = machine(64)
            red = (
                SMTreeReduce(m, arity=2)
                if name == "sm"
                else MPTreeReduce(m, operator.add, fanout=8)
            )
            done = []

            def participant(node):
                for _ in range(3):
                    yield from red.reduce(node, node, operator.add)
                done.append(m.sim.now)

            for node in range(64):
                m.processor(node).run_thread(participant(node))
            m.run()
            cycles[name] = max(done)
        assert cycles["mp"] < cycles["sm"]

    @given(st.integers(2, 16), st.lists(st.integers(-50, 50), min_size=16, max_size=16))
    @settings(max_examples=10, deadline=None)
    def test_mp_sum_property(self, fanout, values):
        m = machine(16)
        red = MPTreeReduce(m, operator.add, fanout=fanout)
        res = run_reduce(m, red, values)
        assert all(r == [sum(values)] for r in res.values())
