"""Tests for mesh topology and the wormhole network timing model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import Mesh2D, Network, Packet, PacketKind
from repro.sim import SimulationError, Simulator


class TestMesh2D:
    def test_square_dimensions(self):
        m = Mesh2D(64)
        assert (m.width, m.height) == (8, 8)

    def test_nonsquare_falls_back_to_divisor(self):
        m = Mesh2D(8)
        assert m.width * m.height == 8

    def test_explicit_width(self):
        m = Mesh2D(12, width=4)
        assert (m.width, m.height) == (4, 3)

    def test_bad_width_rejected(self):
        with pytest.raises(ValueError):
            Mesh2D(10, width=4)

    def test_coord_roundtrip(self):
        m = Mesh2D(64)
        for n in range(64):
            assert m.node_at(m.coord(n)) == n

    def test_hops_manhattan(self):
        m = Mesh2D(64)  # 8x8
        assert m.hops(0, 0) == 0
        assert m.hops(0, 7) == 7
        assert m.hops(0, 63) == 14
        assert m.hops(9, 18) == 2

    def test_route_is_xy(self):
        m = Mesh2D(16)  # 4x4
        route = m.route(0, 15)
        # X first: 0->1->2->3, then Y: 3->7->11->15
        assert route == [(0, 1), (1, 2), (2, 3), (3, 7), (7, 11), (11, 15)]

    def test_route_length_matches_hops(self):
        m = Mesh2D(64)
        for src, dst in [(0, 63), (5, 40), (17, 17), (63, 0)]:
            assert len(m.route(src, dst)) == m.hops(src, dst)

    def test_neighbors_corner_edge_interior(self):
        m = Mesh2D(16)  # 4x4
        assert sorted(m.neighbors(0)) == [1, 4]
        assert sorted(m.neighbors(1)) == [0, 2, 5]
        assert sorted(m.neighbors(5)) == [1, 4, 6, 9]

    def test_out_of_range_node(self):
        m = Mesh2D(16)
        with pytest.raises(ValueError):
            m.hops(0, 16)

    @given(st.integers(0, 63), st.integers(0, 63))
    @settings(max_examples=50)
    def test_route_connects_endpoints(self, src, dst):
        m = Mesh2D(64)
        route = m.route(src, dst)
        if src == dst:
            assert route == []
        else:
            assert route[0][0] == src
            assert route[-1][1] == dst
            for (a, b), (c, d) in zip(route, route[1:]):
                assert b == c
                assert m.hops(a, b) == 1


class TestPacket:
    def test_size_must_be_positive(self):
        with pytest.raises(ValueError):
            Packet(src=0, dst=1, kind=PacketKind.USER_MESSAGE, size_words=0)

    def test_protocol_classification(self):
        p = Packet(src=0, dst=1, kind=PacketKind.COH_READ_REQ, size_words=3)
        q = Packet(src=0, dst=1, kind=PacketKind.USER_MESSAGE, size_words=3)
        assert p.is_protocol and not q.is_protocol

    def test_unique_ids(self):
        a = Packet(src=0, dst=1, kind=PacketKind.USER_MESSAGE, size_words=1)
        b = Packet(src=0, dst=1, kind=PacketKind.USER_MESSAGE, size_words=1)
        assert a.pid != b.pid


def make_net(n=16, **kw):
    sim = Simulator()
    net = Network(sim, Mesh2D(n), **kw)
    delivered = []
    for node in range(n):
        net.attach(node, lambda p, node=node: delivered.append((node, p, sim.now)))
    return sim, net, delivered


class TestNetworkTiming:
    def test_uncontended_latency_formula(self):
        sim, net, delivered = make_net(
            16, hop_latency=2, bandwidth_bytes_per_cycle=4.0, injection_latency=1
        )
        p = Packet(src=0, dst=3, kind=PacketKind.USER_MESSAGE, size_words=4)
        arrival = net.send(p)
        # injection 1 + 3 hops * 2 + body 4 words * 1 cycle
        assert arrival == 1 + 3 * 2 + 4
        sim.run()
        assert delivered == [(3, p, arrival)]

    def test_local_loopback(self):
        sim, net, delivered = make_net(
            16, local_loopback_latency=2, bandwidth_bytes_per_cycle=4.0
        )
        p = Packet(src=5, dst=5, kind=PacketKind.USER_MESSAGE, size_words=2)
        arrival = net.send(p)
        assert arrival == 2 + 2  # loopback + body (2 words @ 1 cyc/word)
        sim.run()
        assert delivered[0][0] == 5

    def test_link_contention_serializes(self):
        sim, net, delivered = make_net(16, bandwidth_bytes_per_cycle=4.0)
        p1 = Packet(src=0, dst=1, kind=PacketKind.USER_MESSAGE, size_words=10)
        p2 = Packet(src=0, dst=1, kind=PacketKind.USER_MESSAGE, size_words=10)
        a1 = net.send(p1)
        a2 = net.send(p2)
        assert a2 > a1
        # second packet must wait for the first body to clear the link
        assert a2 - a1 >= 10

    def test_distinct_links_do_not_contend(self):
        sim, net, delivered = make_net(16)
        a1 = net.send(Packet(src=0, dst=1, kind=PacketKind.USER_MESSAGE, size_words=8))
        a2 = net.send(Packet(src=4, dst=5, kind=PacketKind.USER_MESSAGE, size_words=8))
        assert a1 == a2

    def test_longer_route_takes_longer(self):
        sim, net, delivered = make_net(16)
        a_near = net.send(Packet(src=0, dst=1, kind=PacketKind.USER_MESSAGE, size_words=4))
        sim2, net2, _ = make_net(16)
        a_far = net2.send(Packet(src=0, dst=15, kind=PacketKind.USER_MESSAGE, size_words=4))
        assert a_far > a_near

    def test_stats_accumulate(self):
        sim, net, delivered = make_net(16)
        net.send(Packet(src=0, dst=1, kind=PacketKind.USER_MESSAGE, size_words=4))
        net.send(Packet(src=0, dst=2, kind=PacketKind.COH_READ_REQ, size_words=3))
        assert net.stats.packets == 2
        assert net.stats.words == 7
        assert net.stats.by_kind[PacketKind.USER_MESSAGE] == 1

    def test_send_to_unattached_node_fails(self):
        sim = Simulator()
        net = Network(sim, Mesh2D(4))
        with pytest.raises(SimulationError):
            net.send(Packet(src=0, dst=1, kind=PacketKind.USER_MESSAGE, size_words=1))

    def test_double_attach_rejected(self):
        sim = Simulator()
        net = Network(sim, Mesh2D(4))
        net.attach(0, lambda p: None)
        with pytest.raises(SimulationError):
            net.attach(0, lambda p: None)

    def test_bandwidth_scales_body_time(self):
        sim1, net1, _ = make_net(16, bandwidth_bytes_per_cycle=2.0)
        sim2, net2, _ = make_net(16, bandwidth_bytes_per_cycle=4.0)
        slow = net1.send(Packet(src=0, dst=1, kind=PacketKind.USER_MESSAGE, size_words=100))
        fast = net2.send(Packet(src=0, dst=1, kind=PacketKind.USER_MESSAGE, size_words=100))
        assert slow > fast

    @given(st.integers(0, 15), st.integers(0, 15), st.integers(1, 64))
    @settings(max_examples=40)
    def test_delivery_always_in_future(self, src, dst, words):
        sim, net, delivered = make_net(16)
        arrival = net.send(Packet(src=src, dst=dst, kind=PacketKind.USER_MESSAGE, size_words=words))
        assert arrival >= sim.now
        sim.run()
        assert len(delivered) == 1
