"""Tests for the content-addressed run cache and incremental sweeps.

Correctness contract (ISSUE 5): a hit returns a bit-identical result
vs the cold run; perturbing kwargs misses; editing code in the point's
import closure invalidates; a corrupt entry is detected and re-run;
and serial / parallel / cached results all agree.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pickle
import sys
import threading
import time

import pytest

from repro.experiments import ALL_EXPERIMENTS
from repro.obs.session import ObsConfig, session
from repro.perf.cache import (
    RunCache,
    activate,
    code_fingerprint,
    import_closure,
    repo_fingerprint,
)
from repro.perf.cache import main as cache_main
from repro.perf.sweep import (
    PARALLEL_MIN_POINTS_ENV,
    SweepPoint,
    SweepRunner,
    _chunksize,
)


def _cube(x):
    return x * x * x


POINTS = [SweepPoint("tests.test_perf_cache:_cube", {"x": i}) for i in range(6)]
EXPECT = [i**3 for i in range(6)]


# ----------------------------------------------------------------------
# Code fingerprinting
# ----------------------------------------------------------------------
class TestFingerprint:
    def test_closure_covers_transitive_repro_imports(self):
        closure = import_closure("repro.experiments.fig7_memcpy")
        assert "repro.experiments.fig7_memcpy" in closure
        assert "repro.experiments.common" in closure  # direct import
        assert "repro.sim.engine" in closure  # transitive, several hops

    def test_fingerprint_is_stable(self):
        a = code_fingerprint("repro.experiments.fig7_memcpy")
        b = code_fingerprint("repro.experiments.fig7_memcpy")
        assert a == b and len(a) == 64

    def test_distinct_closures_distinct_fingerprints(self):
        # leaf module (closure of 1) vs an experiment (closure of ~all
        # of repro — experiments reach the whole machine model)
        assert code_fingerprint("repro.analysis.tables") != code_fingerprint(
            "repro.experiments.fig7_memcpy"
        )
        assert len(import_closure("repro.analysis.tables")) < len(
            import_closure("repro.experiments.fig7_memcpy")
        )

    def test_repo_fingerprint_shape(self):
        assert len(repo_fingerprint()) == 64

    def test_unresolvable_module_gets_sentinel(self):
        assert code_fingerprint("no.such.module") == "unresolved:no.such.module"


def _write_module(path, body, bump_ns):
    path.write_text(body)
    # force a distinct mtime_ns so the fingerprint memo can't collide
    os.utime(path, ns=(bump_ns, bump_ns))


class TestFingerprintInvalidation:
    def test_editing_module_changes_fingerprint_and_invalidates(
        self, tmp_path, monkeypatch
    ):
        import importlib

        monkeypatch.syspath_prepend(str(tmp_path))
        mod = tmp_path / "cache_fp_mod.py"
        base_ns = time.time_ns()
        _write_module(mod, "def fn(x):\n    return x + 1\n", base_ns)
        importlib.invalidate_caches()
        points = [SweepPoint("cache_fp_mod:fn", {"x": 1})]
        cache = RunCache(tmp_path / "cache")
        try:
            with activate(cache):
                assert SweepRunner(1).map(points) == [2]
                fp1 = code_fingerprint("cache_fp_mod")
                _write_module(mod, "def fn(x):\n    return x + 100\n",
                              base_ns + 10_000_000)
                sys.modules.pop("cache_fp_mod", None)
                importlib.invalidate_caches()
                fp2 = code_fingerprint("cache_fp_mod")
                assert fp1 != fp2
                # transparently re-runs the affected point
                assert SweepRunner(1).map(points) == [101]
            assert cache.stats.misses == 2
            assert cache.stats.invalidations == 1
            assert cache.stats.hits == 0
        finally:
            sys.modules.pop("cache_fp_mod", None)


# ----------------------------------------------------------------------
# Hit/miss/corruption semantics
# ----------------------------------------------------------------------
class TestRunCache:
    def test_hit_is_bit_identical_to_cold_run(self, tmp_path):
        cache = RunCache(tmp_path)
        with activate(cache):
            cold = SweepRunner(1).map(POINTS)
            warm = SweepRunner(1).map(POINTS)
        assert cold == warm == EXPECT
        assert pickle.dumps(cold, protocol=4) == pickle.dumps(warm, protocol=4)
        assert cache.stats.snapshot() == {
            "hits": 6, "misses": 6, "stores": 6,
            "invalidations": 0, "corrupt": 0, "uncacheable": 0,
        }

    def test_kwargs_perturbation_misses(self, tmp_path):
        cache = RunCache(tmp_path)
        with activate(cache):
            SweepRunner(1).map(POINTS)
            SweepRunner(1).map([SweepPoint("tests.test_perf_cache:_cube", {"x": 99})])
        assert cache.stats.hits == 0
        assert cache.stats.misses == 7
        # a never-seen descriptor is a plain miss, not an invalidation
        assert cache.stats.invalidations == 0

    def test_corrupt_entry_detected_and_rerun(self, tmp_path):
        cache = RunCache(tmp_path)
        with activate(cache):
            SweepRunner(1).map(POINTS)
            objects = sorted((tmp_path / "objects").glob("*/*.pkl"))
            assert len(objects) == 6
            blob = bytearray(objects[0].read_bytes())
            blob[-1] ^= 0xFF  # flip one payload bit
            objects[0].write_bytes(bytes(blob))
            assert SweepRunner(1).map(POINTS) == EXPECT
        assert cache.stats.corrupt == 1
        assert cache.stats.hits == 5
        # the corrupt entry was re-run and re-stored
        assert cache.stats.stores == 7

    def test_truncated_entry_detected(self, tmp_path):
        cache = RunCache(tmp_path)
        with activate(cache):
            SweepRunner(1).map(POINTS[:1])
            path = next((tmp_path / "objects").glob("*/*.pkl"))
            path.write_bytes(path.read_bytes()[:10])
            assert SweepRunner(1).map(POINTS[:1]) == EXPECT[:1]
        assert cache.stats.corrupt == 1

    def test_serial_parallel_cached_all_agree(self, tmp_path, monkeypatch):
        monkeypatch.setenv(PARALLEL_MIN_POINTS_ENV, "2")  # genuine fan-out
        uncached = SweepRunner(1).map(POINTS)
        with activate(RunCache(tmp_path)):
            cold_parallel = SweepRunner(2).map(POINTS)
            warm_serial = SweepRunner(1).map(POINTS)
            warm_parallel = SweepRunner(2).map(POINTS)
        assert uncached == cold_parallel == warm_serial == warm_parallel == EXPECT

    def test_costs_recorded_and_survive_invalidation_keying(self, tmp_path):
        cache = RunCache(tmp_path)
        with activate(cache):
            SweepRunner(1).map(POINTS[:2])
        for p in POINTS[:2]:
            cost = cache.recorded_cost(p)
            assert cost is not None and cost >= 0.0
        assert cache.recorded_cost(POINTS[5]) is None

    def test_no_active_cache_means_no_cache_io(self, tmp_path):
        cache = RunCache(tmp_path)
        assert SweepRunner(1).map(POINTS) == EXPECT
        assert not (tmp_path / "objects").exists()
        assert cache.stats.misses == 0


# ----------------------------------------------------------------------
# Experiment integration: cached tables are byte-identical
# ----------------------------------------------------------------------
class TestExperimentIntegration:
    def test_fig7_cached_rows_and_tables_identical(self, tmp_path):
        fn = ALL_EXPERIMENTS["fig7"]
        reference = fn(jobs=1, block_sizes=(64, 256))
        cache = RunCache(tmp_path)
        with activate(cache):
            cold = fn(jobs=1, block_sizes=(64, 256))
            warm = fn(jobs=1, block_sizes=(64, 256))
        assert cache.stats.hits == 6 and cache.stats.misses == 6
        ref = json.dumps(reference.rows, sort_keys=True, default=str)
        assert ref == json.dumps(cold.rows, sort_keys=True, default=str)
        assert ref == json.dumps(warm.rows, sort_keys=True, default=str)
        assert cold.format_table() == warm.format_table() == reference.format_table()

    def test_observed_cached_run_replays_observations(self, tmp_path):
        points = [
            SweepPoint("repro.experiments.fig8_accum:measure_point",
                       {"impl": "sm", "nbytes": 64}),
            SweepPoint("repro.experiments.fig8_accum:measure_point",
                       {"impl": "mp", "nbytes": 64}),
        ]
        plain = SweepRunner(1).map(points)
        with activate(RunCache(tmp_path)):
            with session(ObsConfig()) as s1:
                cold = SweepRunner(1).map(points)
                d1 = s1.data()
            with session(ObsConfig()) as s2:
                warm = SweepRunner(1).map(points)
                d2 = s2.data()
        assert plain == cold == warm
        assert d1["cache"]["misses"] == 2 and d1["cache"]["hits"] == 0
        assert d2["cache"]["hits"] == 2 and d2["cache"]["misses"] == 0
        # the warm run replays the *same* observations, merged the same
        assert d1["records"] == d2["records"]
        assert d1["cycle_attribution"] == d2["cycle_attribution"]
        names = [r["name"] for r in d2["metrics"]["rows"]]
        assert "sweep.cache.hits" in names

    def test_observed_and_unobserved_results_cached_separately(self, tmp_path):
        points = [SweepPoint("tests.test_perf_cache:_cube", {"x": 3})]
        cache = RunCache(tmp_path)
        with activate(cache):
            assert SweepRunner(1).map(points) == [27]
            with session(ObsConfig()) as s:
                assert SweepRunner(1).map(points) == [27]
                s.data()
        # the observed run keys differently (it must capture and replay
        # observation payloads), so it is a miss, not a bogus hit
        assert cache.stats.misses == 2
        assert cache.stats.hits == 0


# ----------------------------------------------------------------------
# python -m repro.perf.cache (stats / gc / verify / fingerprint)
# ----------------------------------------------------------------------
class TestCacheTool:
    def _populate(self, tmp_path):
        cache = RunCache(tmp_path)
        with activate(cache):
            SweepRunner(1).map(POINTS)
        return cache

    def test_stats_lists_entries(self, tmp_path, capsys):
        self._populate(tmp_path)
        assert cache_main(["stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "entries:   6" in out
        assert "tests.test_perf_cache:_cube" in out

    def test_verify_clean_cache_passes(self, tmp_path, capsys):
        self._populate(tmp_path)
        assert cache_main(
            ["verify", "--cache-dir", str(tmp_path), "--sample", "4"]
        ) == 0
        assert "4 sampled entries: 4 ok" in capsys.readouterr().out

    def test_verify_detects_stale_result(self, tmp_path, capsys):
        cache = self._populate(tmp_path)
        # forge a plausible-but-wrong entry: valid digest, wrong result
        path = sorted((tmp_path / "objects").glob("*/*.pkl"))[0]
        entry = cache._decode(path.read_bytes())
        entry["result"] = 424242
        path.write_bytes(cache._encode(entry))
        rc = cache_main(
            ["verify", "--cache-dir", str(tmp_path), "--sample", "6", "--fix"]
        )
        assert rc == 1
        assert "1 mismatched" in capsys.readouterr().out
        assert not path.exists()  # --fix dropped it

    def test_verify_counts_corrupt_files(self, tmp_path, capsys):
        self._populate(tmp_path)
        path = sorted((tmp_path / "objects").glob("*/*.pkl"))[0]
        path.write_bytes(b"garbage")
        assert cache_main(["verify", "--cache-dir", str(tmp_path)]) == 1
        assert "1 corrupt" in capsys.readouterr().out

    def test_gc_byte_budget_drops_entries(self, tmp_path, capsys):
        cache = self._populate(tmp_path)
        assert cache_main(
            ["gc", "--cache-dir", str(tmp_path), "--max-bytes", "0"]
        ) == 0
        assert "removed 6 entries" in capsys.readouterr().out
        assert list(cache.entries()) == []

    def test_gc_all_wipes_cost_sidecars_too(self, tmp_path):
        self._populate(tmp_path)
        assert cache_main(["gc", "--cache-dir", str(tmp_path), "--all"]) == 0
        assert not list((tmp_path / "costs").glob("*/*.json"))

    def test_fingerprint_prints_hex(self, tmp_path, capsys):
        assert cache_main(["fingerprint"]) == 0
        out = capsys.readouterr().out.strip()
        assert len(out) == 64 and int(out, 16) >= 0


# ----------------------------------------------------------------------
# Scheduling satellites: chunksize + persistent pool
# ----------------------------------------------------------------------
class TestScheduling:
    def test_chunksize_scales_with_point_count(self):
        assert _chunksize(6, 4) == 1  # small sweeps: scheduling freedom
        assert _chunksize(9, 3) == 1
        assert _chunksize(1000, 8) == 31  # big ablations: amortize IPC
        assert _chunksize(1, 1) == 1

    def test_pool_persists_across_runners(self, monkeypatch):
        from repro.perf import sweep

        monkeypatch.setenv(PARALLEL_MIN_POINTS_ENV, "2")
        sweep.shutdown_pools()
        try:
            assert SweepRunner(2).map(POINTS) == EXPECT
            pool_first = sweep._POOLS[2]
            assert SweepRunner(2).map(POINTS) == EXPECT
            assert sweep._POOLS[2] is pool_first
            assert len(sweep._POOLS) == 1
        finally:
            sweep.shutdown_pools()

    def test_warm_pool_reports_startup_once(self):
        from repro.perf import sweep

        sweep.shutdown_pools()
        try:
            first = sweep.warm_pool(2)
            assert first > 0.0
            assert sweep.warm_pool(2) == 0.0  # already warm
            assert sweep.warm_pool(1) == 0.0  # no pool needed
        finally:
            sweep.shutdown_pools()

    def test_miss_cost_ranking_longest_first_unknown_leads(self, tmp_path):
        cache = RunCache(tmp_path)
        # seed cost sidecars (point 0 cheap, point 1 expensive), then
        # drop the entries so both points are misses with known costs
        fp = code_fingerprint("tests.test_perf_cache")
        for p, cost in ((POINTS[0], 0.001), (POINTS[1], 9.0)):
            cache.put(cache.key_for(p, fp, ""), p, fp, "", 0, None, cost)
            cache._obj_path(cache.key_for(p, fp, "")).unlink()

        def rank(i):  # mirrors SweepRunner._run_misses ordering
            cost = cache.recorded_cost(POINTS[i])
            return -cost if cost is not None else float("-inf")

        # unknown-cost point 5 first ("could be long"), then 9s, then cheap
        assert sorted([0, 1, 5], key=rank) == [5, 1, 0]


# ----------------------------------------------------------------------
# Concurrent writers (ISSUE 6 satellite): many threads and processes
# hammering ONE key must never corrupt the entry or leak temp files —
# write-to-temp + atomic rename with per-(pid, thread, seq) temp names.
# ----------------------------------------------------------------------
HAMMER_POINT = SweepPoint("tests.test_perf_cache:_cube", {"x": 7})
HAMMER_FP = "f" * 64


def _hammer_proc(cache_dir: str, rounds: int) -> None:
    """Child-process body: repeatedly publish and read back one key.
    Any torn read (decode failure / wrong result) raises → exitcode."""
    cache = RunCache(cache_dir)
    key = cache.key_for(HAMMER_POINT, HAMMER_FP, "")
    for _ in range(rounds):
        cache.put(key, HAMMER_POINT, HAMMER_FP, "", 343, None, 0.1)
        entry = cache.get(key, HAMMER_POINT)
        assert entry is not None and entry["result"] == 343


class TestConcurrentWriters:
    def test_threads_and_processes_hammer_one_key(self, tmp_path):
        cache = RunCache(tmp_path)
        key = cache.key_for(HAMMER_POINT, HAMMER_FP, "")
        errors: list[BaseException] = []
        barrier = threading.Barrier(4)

        def hammer_thread():
            try:
                barrier.wait()
                for _ in range(30):
                    cache.put(key, HAMMER_POINT, HAMMER_FP, "", 343, None, 0.1)
                    entry = cache.get(key, HAMMER_POINT)
                    assert entry is not None and entry["result"] == 343
            except BaseException as exc:  # pragma: no cover - fail path
                errors.append(exc)

        procs = [
            multiprocessing.Process(target=_hammer_proc, args=(str(tmp_path), 30))
            for _ in range(3)
        ]
        threads = [threading.Thread(target=hammer_thread) for _ in range(4)]
        for p in procs:
            p.start()
        for t in threads:
            t.start()
        for t in threads:
            t.join(60.0)
        for p in procs:
            p.join(60.0)
        assert not errors
        assert all(p.exitcode == 0 for p in procs)
        # the surviving entry decodes cleanly and no writer ever saw a
        # torn file (every reader above checked); shared stats stayed
        # coherent under the lock
        final = cache.get(key, HAMMER_POINT)
        assert final is not None and final["result"] == 343
        assert cache.stats.hits == 4 * 30 + 1
        assert cache.stats.stores == 4 * 30
        # no half-written temp files left anywhere in the cache tree
        assert list(tmp_path.rglob("*.tmp")) == []
        # exactly one object file for the key
        assert len(list((tmp_path / "objects").glob("*/*.pkl"))) == 1

    def test_stats_bump_rejects_unknown_field(self):
        from repro.perf.cache import CacheStats

        with pytest.raises(ValueError):
            CacheStats().bump("nope")


@pytest.fixture(autouse=True, scope="module")
def _no_leaked_pools():
    yield
    from repro.perf import sweep

    sweep.shutdown_pools()
