#!/usr/bin/env python3
"""Quickstart: simulate a fork/join program on a 16-node Alewife.

Builds the machine, layers the hybrid (shared-memory + message-
passing) runtime on top, runs a divide-and-conquer tree sum, and
compares against the shared-memory-only scheduler — the paper's
central experiment, at toy scale.

Run:  python examples/quickstart.py
"""

from repro import Compute, Machine, MachineConfig, Runtime


def tree_sum(rt, node, depth):
    """Count the leaves of a binary tree with 50 cycles of work each.

    ``rt.fork`` pushes a lazily-created task; ``rt.join`` runs it
    inline if nobody stole it, or blocks if it migrated.
    """
    if depth == 0:
        yield Compute(50)
        return 1
    fut = yield from rt.fork(node, lambda rt, nd: tree_sum(rt, nd, depth - 1))
    right = yield from tree_sum(rt, node, depth - 1)
    left = yield from rt.join(node, fut)
    return left + right


def main() -> None:
    depth = 9
    print(f"binary tree of depth {depth} ({2**depth} leaves), 16 nodes\n")

    # sequential baseline on a single-node machine
    m1 = Machine(MachineConfig(n_nodes=1))
    rt1 = Runtime(m1)
    _result, seq_cycles = rt1.run_to_completion(
        0, lambda rt, nd: tree_sum(rt, nd, depth)
    )
    print(f"sequential:        {seq_cycles:>9,} cycles")

    for kind in ("sm", "hybrid"):
        m = Machine(MachineConfig(n_nodes=16))
        rt = Runtime(m, scheduler=kind)
        result, cycles = rt.run_to_completion(
            0, lambda rt, nd: tree_sum(rt, nd, depth)
        )
        assert result == 2**depth
        attempted, won = rt.total_steals()
        print(
            f"{kind:>10} sched: {cycles:>9,} cycles "
            f"(speedup {seq_cycles / cycles:4.1f}, {won} tasks stolen)"
        )

    print(
        "\nThe hybrid scheduler reaches the same answer faster because"
        "\nits queue operations need no locks and a steal is a single"
        "\nrequest/reply message exchange (paper §4.5)."
    )


if __name__ == "__main__":
    main()
