#!/usr/bin/env python3
"""Fault injection: the Fig. 7 bulk memcpy on a lossy fabric.

The paper's message interface makes no delivery promise — reliability
is software's job. This example runs the message-passing memcpy three
ways on a 4-node machine:

1. raw CMMU messages on a healthy fabric (the paper's setting),
2. through the reliable layer (seq numbers + acks + retransmit) on a
   healthy fabric — the cost of the insurance premium,
3. reliable on a fabric that drops 5% of software packets — the
   insurance paying out: the copy still lands bit-for-bit, the lost
   packets are retransmitted after a timeout, and every retry is
   charged on the simulated clock.

Faults are seeded: rerunning this script reproduces the identical
fault schedule, cycle for cycle.

Run:  python examples/lossy_memcpy.py
"""

from repro import Machine, MachineConfig
from repro.faults import FaultInjector, lossy_plan
from repro.runtime.bulk import BulkTransfer
from repro.runtime.reliable import ReliableLayer
from repro.trace import Tracer

NBYTES = 2048
ROUNDS = 4
DROP = 0.05
SEED = 6


def run_copy(reliable: bool, drop: float):
    """Copy NBYTES from node 0 to node 1, ROUNDS times over."""
    m = Machine(MachineConfig(n_nodes=4))
    tracer = Tracer(m, kinds={"fault"})
    layer = ReliableLayer(m) if reliable else None
    bulk = BulkTransfer(m, reliable=layer)
    injector = FaultInjector(m, lossy_plan(drop, seed=SEED), tracer=tracer)

    src = m.alloc(0, NBYTES)
    dst = m.alloc(1, NBYTES)
    for i in range(NBYTES // 8):
        m.store.write(src + i * 8, i)

    done = []

    def sender():
        for _ in range(ROUNDS):
            yield from bulk.send(
                1, src, dst, NBYTES, wait_ack=True,
                src_node=0 if reliable else None,
            )
        done.append(m.sim.now)

    m.processor(0).run_thread(sender())
    m.run()

    ok = all(m.store.read(dst + i * 8) == i for i in range(NBYTES // 8))
    retries = layer.stats.retransmits if layer else 0
    return done[0], ok, retries, injector, tracer


def main() -> None:
    print(f"bulk memcpy, {ROUNDS} x {NBYTES} B from node 0 to node 1\n")

    raw, ok, _, _, _ = run_copy(reliable=False, drop=0.0)
    print(f"raw, clean fabric:        {raw:>7,} cycles  data ok: {ok}")

    rel, ok, retries, _, _ = run_copy(reliable=True, drop=0.0)
    print(
        f"reliable, clean fabric:   {rel:>7,} cycles  data ok: {ok}  "
        f"retries: {retries}  (+{rel - raw} cyc premium)"
    )

    lossy, ok, retries, injector, tracer = run_copy(reliable=True, drop=DROP)
    print(
        f"reliable, {DROP:.0%} drop rate:  {lossy:>7,} cycles  data ok: {ok}  "
        f"retries: {retries}"
    )
    print(f"\n{injector.summary()}")
    print("fault trace:")
    for ev in tracer.filter(kind="fault"):
        print(f"  cycle {ev.time:>6}: n{ev.node} {ev.what} {ev.detail}")
    print(
        f"\nslowdown vs clean reliable run: {lossy / rel:.2f}x "
        f"(every retransmission waited out a timeout on the simulated clock)"
    )


if __name__ == "__main__":
    main()
