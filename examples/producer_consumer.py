#!/usr/bin/env python3
"""Combining synchronization with data transfer (paper §2.2).

A producer computes a small record and hands it to a consumer on
another node. Two implementations:

* shared-memory: the producer writes the data, then sets a flag; the
  consumer spins on the flag and then reads the data — synchronization
  and data travel as *separate* coherence transactions, and the
  consumer cannot usefully prefetch the data before the flag flips.
* message: one message bundles the synchronization event and the
  payload; the consumer's handler has everything on arrival.

Run:  python examples/producer_consumer.py
"""

from repro import Compute, Load, Machine, MachineConfig, Send, Store

RECORD_WORDS = 6  # a small record: header + a few payload words
PRODUCE_TIME = 400


def run_shared_memory() -> int:
    m = Machine(MachineConfig(n_nodes=2))
    data = [m.alloc(0, 8) for _ in range(RECORD_WORDS)]
    flag = m.alloc(0, 8)
    received = []

    def producer():
        yield Compute(PRODUCE_TIME)
        for i, addr in enumerate(data):
            yield Store(addr, 100 + i)
        yield Store(flag, 1)  # separate synchronization write

    def consumer():
        while True:  # spin on the flag
            v = yield Load(flag)
            if v:
                break
            yield Compute(6)
        record = []
        for addr in data:  # then fetch the payload
            record.append((yield Load(addr)))
        received.append((record, m.sim.now))

    m.processor(0).run_thread(producer())
    m.processor(1).run_thread(consumer())
    m.run()
    record, t = received[0]
    assert record == [100 + i for i in range(RECORD_WORDS)]
    return t


def run_message() -> int:
    m = Machine(MachineConfig(n_nodes=2))
    received = []

    def handler(msg):
        yield Compute(4)
        received.append((list(msg.operands), m.sim.now))

    m.processor(1).register_handler("record", handler)

    def producer():
        yield Compute(PRODUCE_TIME)
        yield Send(1, "record", operands=tuple(100 + i for i in range(RECORD_WORDS)))

    m.processor(0).run_thread(producer())
    m.run()
    record, t = received[0]
    assert record == [100 + i for i in range(RECORD_WORDS)]
    return t


def main() -> None:
    t_sm = run_shared_memory()
    t_mp = run_message()
    print("producer-consumer handoff (production takes "
          f"{PRODUCE_TIME} cycles):\n")
    print(f"  shared-memory (flag + reads): data ready at consumer after {t_sm} cycles")
    print(f"  single message (sync + data): data ready at consumer after {t_mp} cycles")
    print(f"\n  post-production latency: {t_sm - PRODUCE_TIME} vs "
          f"{t_mp - PRODUCE_TIME} cycles "
          f"({(t_sm - PRODUCE_TIME) / (t_mp - PRODUCE_TIME):.1f}x)")
    print(
        "\nBundling the synchronization event with the data in one"
        "\nmessage removes the flag round-trip and the per-line fetches"
        "\n(paper §2.2, 'Combining Synchronization with Data Transfer')."
    )


if __name__ == "__main__":
    main()
