#!/usr/bin/env python3
"""Adaptive quadrature on the hybrid runtime (paper §4.5, Fig. 10).

Integrates a bivariate function with a sharp ridge over the unit
square. The recursion tree is highly irregular — some quadrants stop
immediately, the ridge region refines many levels deep — which is
exactly the dynamic, unpredictable parallelism the paper argues needs
hardware-supported fine-grained sharing plus cheap task migration.

Run:  python examples/adaptive_quadrature.py
"""

from repro import Machine, MachineConfig, Runtime
from repro.apps.aq import (
    aq_parallel,
    count_nodes,
    default_integrand,
    sequential_cycles,
)

TOL = 3e-4
DOMAIN = (0.0, 0.0, 1.0, 1.0)


def main() -> None:
    x0, y0, x1, y1 = DOMAIN
    n_tree = count_nodes(default_integrand, x0, y0, x1, y1, TOL)
    seq = sequential_cycles(default_integrand, x0, y0, x1, y1, TOL)
    print(
        f"integrating over the unit square, tol={TOL:g}: "
        f"{n_tree:,} recursion nodes, sequential {seq/33e3:.1f} ms\n"
    )

    results = {}
    for kind in ("sm", "hybrid"):
        m = Machine(MachineConfig(n_nodes=16))
        rt = Runtime(m, scheduler=kind)
        value, cycles = rt.run_to_completion(
            0,
            lambda rt, nd: aq_parallel(
                rt, nd, default_integrand, x0, y0, x1, y1, TOL
            ),
        )
        results[kind] = value
        print(
            f"  {kind:>6} scheduler: integral = {value:.6f}   "
            f"speedup {seq / cycles:4.1f} on 16 nodes"
        )

    assert abs(results["sm"] - results["hybrid"]) < 1e-12
    print(
        "\nBoth schedulers compute the identical integral; the hybrid"
        "\none gets there faster because task migration is one message"
        "\ninstead of a locked shared-memory queue transaction."
    )


if __name__ == "__main__":
    main()
