#!/usr/bin/env python3
"""Heat diffusion with block-partitioned Jacobi SOR (paper §4.6).

A 64x64 plate with a hot west edge relaxes on a 16-node (4x4 mesh)
Alewife, exchanging block borders either through coherent shared
memory or with bulk-transfer messages. Both produce bit-identical
grids, validated against a sequential numpy reference.

Run:  python examples/heat_diffusion.py
"""

import numpy as np

from repro import Machine, MachineConfig
from repro.apps.jacobi import JacobiApp, initial_grid, reference_jacobi

GRID = 64
ITERS = 10


def main() -> None:
    ref = reference_jacobi(initial_grid(GRID), ITERS)
    print(f"{GRID}x{GRID} plate, {ITERS} iterations, 16 processors\n")

    for mode, label in (("sm", "shared-memory"), ("mp", "message-passing")):
        m = Machine(MachineConfig(n_nodes=16))
        app = JacobiApp(m, grid_size=GRID, iters=ITERS, mode=mode)
        grid, cycles = app.run()
        np.testing.assert_allclose(grid, ref, rtol=1e-12, atol=1e-12)
        usec = m.config.cycles_to_usec(cycles)
        print(
            f"  {label:>15} exchange: {app.cycles_per_iteration(cycles):>7,.0f} "
            f"cycles/iter ({usec:,.0f} usec total) — matches numpy exactly"
        )

    print(
        "\nTemperature near the hot west edge after relaxation"
        " (rows 30-33, columns 0-5):"
    )
    c = GRID // 2
    with np.printoptions(precision=2, suppress=True):
        print(ref[c - 2 : c + 2, 0:6])
    print(
        "\nPer Fig. 11: with this much computation per border byte the"
        "\ntwo exchange mechanisms are close; the balance tips with the"
        "\ngrid size (SM for small borders, messages for large)."
    )


if __name__ == "__main__":
    main()
