#!/usr/bin/env python3
"""Three ways to tolerate remote-memory latency (paper §2.2).

The paper lists the latency-tolerance arsenal of a shared-memory
machine: prefetching, weak ordering, and (on Alewife specifically)
Sparcle's fast context switching. This example runs the same
remote-streaming kernel under each mechanism and under plain blocking
loads, on identical hardware.

Kernel: sum a 4 KB array that lives on a neighbouring node
(the Fig. 8 `accum` inner loop).

Run:  python examples/latency_tolerance.py
"""

from repro import Compute, Load, Machine, MachineConfig, Prefetch, Store
from repro.proc.effects import Fence
from repro.params import MachineConfig as _MC, ProcessorParams

N_ELEMS = 512  # 4 KB of doublewords
LINE_ELEMS = 2


def build(proc_params=None):
    m = Machine(
        MachineConfig(n_nodes=4, processor=proc_params or ProcessorParams())
    )
    arr = m.alloc(1, N_ELEMS * 8)
    for i in range(N_ELEMS):
        m.store.write(arr + i * 8, i)
    return m, arr


def sum_loop(m, arr, prefetch_depth=0):
    total = 0
    for i in range(N_ELEMS):
        if prefetch_depth and i % LINE_ELEMS == 0:
            ahead = i + prefetch_depth * LINE_ELEMS
            if ahead < N_ELEMS:
                yield Prefetch(arr + ahead * 8)
        v = yield Load(arr + i * 8)
        total += v
        yield Compute(2)
    assert total == sum(range(N_ELEMS))
    return m.sim.now


def run_blocking():
    m, arr = build()
    box = []
    m.processor(0).run_thread(sum_loop(m, arr), on_finish=box.append)
    m.run()
    return box[0]


def run_prefetch():
    m, arr = build()
    box = []
    m.processor(0).run_thread(sum_loop(m, arr, prefetch_depth=2), on_finish=box.append)
    m.run()
    return box[0]


def run_multicontext():
    """Split the array across four threads on one processor; Sparcle's
    switch-on-miss overlaps their misses."""
    m, arr = build(ProcessorParams(hw_contexts=4))
    done = []

    def part(start, stop):
        total = 0
        for i in range(start, stop):
            v = yield Load(arr + i * 8)
            total += v
            yield Compute(2)
        return total

    quarter = N_ELEMS // 4
    for t in range(4):
        m.processor(0).run_thread(
            part(t * quarter, (t + 1) * quarter), on_finish=done.append
        )
    m.run()
    assert sum(done) == sum(range(N_ELEMS))
    return m.sim.now


def run_weak_ordering_writeback():
    """The write-side counterpart: stream results back to the remote
    node through a store buffer."""
    m, arr = build(ProcessorParams(store_buffer_depth=8))
    dst = m.alloc(1, N_ELEMS * 8)
    box = []

    def kernel():
        for i in range(N_ELEMS):
            v = yield Load(arr + i * 8)
            yield Store(dst + i * 8, v * 2)
            yield Compute(1)
        yield Fence()
        box.append(m.sim.now)

    m.processor(0).run_thread(kernel())
    m.run()
    return box[0]


def main() -> None:
    rows = [
        ("blocking loads", run_blocking()),
        ("prefetch 2 blocks ahead", run_prefetch()),
        ("4 hardware contexts", run_multicontext()),
    ]
    print("summing a 4 KB remote array (same machine, same kernel):\n")
    base = rows[0][1]
    for name, cycles in rows:
        print(f"  {name:<26} {cycles:>7,} cycles   ({base / cycles:4.2f}x)")
    wb = run_weak_ordering_writeback()
    print(
        f"\n  read+write stream with an 8-deep store buffer: {wb:,} cycles"
        "\n  (weak ordering pipelines the write transactions; the final"
        "\n   Fence is where sequential consistency is re-established)"
    )
    print(
        "\nAll three mechanisms attack the same §2.2 problem — keeping"
        "\nthe processor busy while coherent remote transactions fly."
    )


if __name__ == "__main__":
    main()
