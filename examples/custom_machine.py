#!/usr/bin/env python3
"""Configuring the machine model: what if the network were slower?

Every latency in the model is a ``MachineConfig`` knob. This example
re-runs the §4.2 barrier comparison on three machines — the default
Alewife, one with a 4x slower interconnect, and one with expensive
message handling — showing how the SM/MP balance shifts with the
hardware assumptions.

Run:  python examples/custom_machine.py
"""

from dataclasses import replace

from repro import Machine, MachineConfig, MPTreeBarrier, SMTreeBarrier
from repro.params import CmmuParams, NetworkParams
from repro.proc import Compute

N_NODES = 64


def barrier_cycles(cfg: MachineConfig, make_barrier) -> int:
    m = Machine(cfg)
    barrier = make_barrier(m)
    enters, leaves = {}, {}

    def participant(node):
        for ep in range(3):
            enters.setdefault(ep, []).append(m.sim.now)
            yield from barrier.enter(node)
            leaves.setdefault(ep, []).append(m.sim.now)
            yield Compute(1)

    for node in range(cfg.n_nodes):
        m.processor(node).run_thread(participant(node))
    m.run()
    return max(leaves[2]) - max(enters[2])


def main() -> None:
    machines = {
        "default Alewife": MachineConfig(n_nodes=N_NODES),
        "4x slower network": MachineConfig(
            n_nodes=N_NODES,
            network=NetworkParams(hop_latency=8, bandwidth_bytes_per_cycle=1.0),
        ),
        "50-cycle interrupts": MachineConfig(
            n_nodes=N_NODES,
            cmmu=CmmuParams(interrupt_entry=50, interrupt_exit=20),
        ),
    }
    print(f"combining-tree barrier on {N_NODES} processors\n")
    print(f"{'machine':<22} {'SM barrier':>12} {'MP barrier':>12} {'MP wins by':>11}")
    for name, cfg in machines.items():
        sm = barrier_cycles(cfg, lambda m: SMTreeBarrier(m, arity=2))
        mp = barrier_cycles(cfg, lambda m: MPTreeBarrier(m, fanout=8))
        print(f"{name:<22} {sm:>10,}cy {mp:>10,}cy {sm/mp:>10.1f}x")

    print(
        "\nA slower network hurts both (every signal crosses it), while"
        "\nexpensive interrupts erode only the message barrier's edge —"
        "\nthe paper's point that the *integration* must make message"
        "\nhandling cheap (5-cycle handler entry) to pay off."
    )


if __name__ == "__main__":
    main()
