#!/usr/bin/env python3
"""Language-level integration: a shared-object space (paper §6).

The paper closes by noting that "a shared-object space with messages
is the basis for implementing a parallel object-oriented language".
This example builds a shared counter object and invokes it from every
node under the two access policies the integrated hardware makes
possible:

* ``policy="data"``    — move the data: callers read/write the fields
  through coherent shared memory (great when reads dominate — fields
  stay cached everywhere).
* ``policy="compute"`` — move the computation: callers send one
  message and the object's home executes the method (great when
  writes dominate — no ownership ping-pong).

Run:  python examples/shared_objects.py
"""

from repro import Compute, Machine, MachineConfig
from repro.ext import ObjectSpace

N_NODES = 16
CALLS_PER_NODE = 10


def build_counter(m):
    space = ObjectSpace(m)
    return space.create(
        home=0,
        fields={"count": 0, "sum": 0},
        methods={
            "add": lambda f, x: (None, {"count": f["count"] + 1, "sum": f["sum"] + x}),
            "read": lambda f: ((f["count"], f["sum"]), {}),
        },
        read_only={"read"},
    )


def run_workload(policy: str, write_fraction: float) -> int:
    m = Machine(MachineConfig(n_nodes=N_NODES))
    obj = build_counter(m)

    def caller(node):
        for i in range(CALLS_PER_NODE):
            if (i * 997 + node) % 100 < write_fraction * 100:
                yield from obj.invoke(node, "add", (1,), policy=policy)
            else:
                yield from obj.invoke(node, "read", policy=policy)
            yield Compute(40)

    for node in range(1, N_NODES):
        m.processor(node).run_thread(caller(node))
    m.run()
    return m.sim.now


def main() -> None:
    print(
        f"{N_NODES - 1} nodes x {CALLS_PER_NODE} method calls on one shared "
        "object (home = node 0)\n"
    )
    print(f"{'workload':<22} {'move-the-data':>14} {'move-the-compute':>17}  winner")
    for label, wf in (("read-only (0% wr)", 0.0), ("read-mostly (5% wr)", 0.05), ("write-hot (50% wr)", 0.5)):
        t_data = run_workload("data", wf)
        t_comp = run_workload("compute", wf)
        winner = "data" if t_data < t_comp else "compute"
        print(f"{label:<22} {t_data:>12,}cy {t_comp:>15,}cy  {winner}")
    print(
        "\nThe integrated machine lets the object system pick per call:"
        "\ncached (seqlock) shared-memory reads when sharing is read-only,"
        "\none-message method shipping as soon as writes appear — each"
        "\nwrite invalidates every reader's copy AND overflows the"
        "\nLimitLESS hardware pointers, so the crossover sits at a"
        "\nsurprisingly small write fraction."
    )


if __name__ == "__main__":
    main()
