#!/usr/bin/env python3
"""Catching a real data race with ``repro.check`` (see docs/CHECKING.md).

Four worker threads histogram values into shared bucket counters. The
racy version bumps each bucket with a plain load / add / store — two
workers hitting the same bucket can interleave and lose an update.
The fixed version uses the machine's atomic fetch-and-op, which both
makes the increment correct *and* gives the race detector the
happens-before edge it needs to prove the accesses ordered.

Run:  python examples/racy_histogram.py
"""

from repro import Compute, Load, Machine, MachineConfig, Store
from repro.check import CheckerSet
from repro.runtime.sync import fetch_increment

N_WORKERS = 4
N_BUCKETS = 4
VALUES_PER_WORKER = 8


def values_for(worker: int) -> list[int]:
    """A deterministic stream of bucket indices for one worker."""
    return [(worker * 7 + i * 3) % N_BUCKETS for i in range(VALUES_PER_WORKER)]


def run(fixed: bool):
    m = Machine(MachineConfig(n_nodes=N_WORKERS))
    checkers = CheckerSet(m)  # race + coherence + deadlock
    buckets = [m.alloc(b % N_WORKERS, 8) for b in range(N_BUCKETS)]

    def worker(w: int):
        for v in values_for(w):
            if fixed:
                yield fetch_increment(buckets[v])
            else:
                count = yield Load(buckets[v])
                yield Compute(2)  # the read-modify-write window
                yield Store(buckets[v], count + 1)
            yield Compute(5)

    for w in range(N_WORKERS):
        m.processor(w).run_thread(worker(w), label=f"worker{w}")
    m.run()
    report = checkers.finalize()
    counts = [m.store.read(a) for a in buckets]
    return report, counts


def main() -> None:
    expected = [0] * N_BUCKETS
    for w in range(N_WORKERS):
        for v in values_for(w):
            expected[v] += 1

    for label, fixed in (("racy (plain load/store)", False),
                         ("fixed (atomic fetch-and-add)", True)):
        report, counts = run(fixed)
        lost = sum(expected) - sum(counts)
        print(f"{label}:")
        print(f"  histogram {counts} (expected {expected}, "
              f"{lost} increment(s) lost)")
        print("  " + report.summarize().replace("\n", "\n  "))
        print()
    print("The plain read-modify-write is flagged by the happens-before")
    print("race detector even on runs where no increment happens to be")
    print("lost; the atomic version is clean by construction.")


if __name__ == "__main__":
    main()
